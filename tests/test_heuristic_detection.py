"""End-to-end tests of the behavioral DDoS heuristic (section 2.5b).

The paper builds protocol profiles for Mirai, Gafgyt and Daddyl33t only;
"to cover other malware families and new variants" it falls back to the
>100-packets-per-second heuristic with last-command attribution.  Tsunami
exercises exactly that path: its IRC command stream matches none of the
three profiles, so its attacks are only detectable behaviorally.
"""

import random

import pytest

from repro.analysis.ddos_detect import (
    profile_stream,
    rate_bursts,
    target_in_command_bytes,
)
from repro.binary.builder import build_sample
from repro.binary.config import BotConfig
from repro.botnet.c2server import C2Server
from repro.botnet.families import get_family
from repro.botnet.protocols.base import AttackCommand
from repro.core.pipeline import MalNet, PipelineConfig
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.internet import Listener, VirtualInternet
from repro.netsim.packet import Protocol
from repro.sandbox.qemu import MipsEmulator
from repro.sandbox.sandbox import CncHunterSandbox, SANDBOX_IP

C2_IP = ip_to_int("203.0.113.20")
C2_PORT = 6667
TARGET = ip_to_int("192.0.2.80")


@pytest.fixture
def tsunami_setup():
    internet = VirtualInternet(random.Random(0))
    internet.add_host(SANDBOX_IP)
    host = internet.add_host(C2_IP, "irc-c2")
    server = C2Server(get_family("tsunami"), random.Random(1))
    host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP, service=server))
    server.schedule_attack(
        internet.clock.now, AttackCommand("udp", TARGET, 80, 60)
    )
    config = BotConfig(family="tsunami", c2_host=int_to_ip(C2_IP),
                       c2_port=C2_PORT)
    binary = build_sample(config, random.Random(2))
    sandbox = CncHunterSandbox(
        random.Random(3), internet,
        emulator=MipsEmulator(random.Random(4), activation_rate=1.0),
    )
    return sandbox, binary


class TestTsunamiHeuristicPath:
    def test_profilers_blind_to_irc_commands(self, tsunami_setup):
        sandbox, binary = tsunami_setup
        report = sandbox.observe_live(binary.data, duration=600.0)
        assert report.connected
        # the bot itself decoded and executed the command...
        assert report.commands
        # ...but none of the paper's three profiles can see it
        assert profile_stream(report.server_stream) == []

    def test_rate_heuristic_catches_the_attack(self, tsunami_setup):
        sandbox, binary = tsunami_setup
        report = sandbox.observe_live(binary.data, duration=600.0)
        bursts = rate_bursts(report.contained, SANDBOX_IP,
                             c2_hosts={C2_IP})
        assert len(bursts) == 1
        assert bursts[0].target == TARGET
        assert bursts[0].rate > 100

    def test_attribution_via_command_bytes(self, tsunami_setup):
        sandbox, binary = tsunami_setup
        report = sandbox.observe_live(binary.data, duration=600.0)
        # method-b verification: the target IP is in the IRC PRIVMSG text
        assert target_in_command_bytes(TARGET, report.server_stream)
        # a host never named in commands is not attributable
        assert not target_in_command_bytes(ip_to_int("198.51.100.99"),
                                           report.server_stream)


class TestPipelineHeuristicRecords:
    def test_heuristic_ddos_record_created(self, tsunami_setup):
        """A pipeline observing all families records the Tsunami attack
        via the heuristic (family tag 'heuristic', via_heuristic=True)."""
        sandbox, binary = tsunami_setup
        report = sandbox.observe_live(binary.data, duration=600.0)
        from repro.analysis.ddos_detect import attribute_burst

        bursts = rate_bursts(report.contained, SANDBOX_IP, {C2_IP})
        profiled = profile_stream(report.server_stream)
        # exactly the pipeline's logic: unprofiled burst + byte match
        unattributed = [b for b in bursts
                        if attribute_burst(b, profiled) is None]
        assert unattributed
        assert all(
            target_in_command_bytes(b.target, report.server_stream)
            for b in unattributed
        )


class TestPcapRoundtripIntegration:
    def test_live_capture_survives_pcap_and_reanalysis(self, tsunami_setup):
        """Writing the contained traffic to pcap and re-reading it must
        yield identical heuristic detections — captures are evidence."""
        sandbox, binary = tsunami_setup
        report = sandbox.observe_live(binary.data, duration=600.0)
        restored = Capture.from_pcap_bytes(report.contained.to_pcap_bytes())
        original = rate_bursts(report.contained, SANDBOX_IP, {C2_IP})
        replayed = rate_bursts(restored, SANDBOX_IP, {C2_IP})
        assert [(b.target, b.packets) for b in replayed] == [
            (b.target, b.packets) for b in original
        ]
