"""Tests for the Bot runtime: scanning, exploitation, P2P, attacks."""

import random

import pytest

from repro.binary.config import BotConfig
from repro.botnet.bot import Bot, TELNET_CREDENTIALS, TELNET_PORTS
from repro.botnet.exploits import BY_KEY, KEY_TO_INDEX, classify_exploit
from repro.botnet.protocols import p2p
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import int_to_ip, ip_to_int, is_reserved
from repro.netsim.capture import Capture
from repro.netsim.packet import Protocol

BOT_IP = ip_to_int("198.51.100.77")
TARGET = ip_to_int("192.0.2.50")


class FakeSession:
    def __init__(self):
        self.sent = b""
        self.closed = False

    def send(self, data):
        self.sent += data

    def recv(self):
        return b""

    def close(self):
        self.closed = True


class RecordingAdapter:
    """Adapter that accepts every Nth TCP connection and records traffic."""

    def __init__(self, accept_every=1):
        self.accept_every = accept_every
        self.connect_attempts = []
        self.sessions = []
        self.datagrams = []
        self.dns_queries = []
        self.dns_answer = None

    def tcp_connect(self, dst, port, trace=None):
        self.connect_attempts.append((dst, port))
        if len(self.connect_attempts) % self.accept_every:
            return None
        session = FakeSession()
        self.sessions.append(((dst, port), session))
        return session

    def send_datagram(self, pkt, trace=None):
        self.datagrams.append(pkt)

    def dns_lookup(self, name, trace=None):
        self.dns_queries.append(name)
        return self.dns_answer


def mirai_bot(**overrides):
    defaults = dict(
        family="mirai", c2_host=int_to_ip(TARGET), c2_port=23,
        scan_ports=[23, 2323],
        exploit_ids=[KEY_TO_INDEX["CVE-2018-10561"]],
        loader_name="8UsA.sh", downloader="203.0.113.5:80",
        variant="mirai.a",
    )
    defaults.update(overrides)
    return Bot(BotConfig(**defaults), BOT_IP, random.Random(3))


class TestC2Resolution:
    def test_ip_config_resolves_directly(self):
        adapter = RecordingAdapter()
        assert mirai_bot().resolve_c2(adapter) == TARGET
        assert adapter.dns_queries == []

    def test_domain_config_uses_dns(self):
        adapter = RecordingAdapter()
        adapter.dns_answer = TARGET
        bot = mirai_bot(c2_host="cnc.example.com")
        assert bot.resolve_c2(adapter) == TARGET
        assert adapter.dns_queries == ["cnc.example.com"]

    def test_no_c2_configured(self):
        bot = Bot(BotConfig(family="mozi"), BOT_IP, random.Random(0))
        assert bot.resolve_c2(RecordingAdapter()) is None

    def test_override_target_skips_resolution(self):
        adapter = RecordingAdapter()
        bot = mirai_bot(c2_host="cnc.example.com")
        session = bot.connect_c2(adapter, override_target=(TARGET, 666))
        assert session is not None
        assert adapter.dns_queries == []
        assert adapter.connect_attempts == [(TARGET, 666)]

    def test_connect_failure_returns_none(self):
        adapter = RecordingAdapter(accept_every=10**9)
        assert mirai_bot().connect_c2(adapter) is None


class TestScanning:
    def test_targets_avoid_reserved_space(self):
        for address, _port in mirai_bot().scan_targets(200):
            assert not is_reserved(address)

    def test_targets_include_exploit_port(self):
        ports = {port for _ip, port in mirai_bot().scan_targets(500)}
        assert 8080 in ports  # GPON exploit port
        assert 23 in ports

    def test_default_ports_when_unconfigured(self):
        bot = Bot(BotConfig(family="gafgyt"), BOT_IP, random.Random(0))
        ports = {port for _ip, port in bot.scan_targets(100)}
        assert ports <= set(TELNET_PORTS)

    def test_scan_burst_hits_on_accepted_connections(self):
        adapter = RecordingAdapter(accept_every=5)
        hits = mirai_bot().scan_burst(adapter, 50)
        assert len(hits) == 10
        assert all(session.closed for _key, session in adapter.sessions)

    def test_telnet_hit_sends_credentials(self):
        bot = mirai_bot(exploit_ids=[])
        payload, vuln = bot.attack_payload_for_port(23)
        assert vuln is None
        assert any(payload.startswith(user) for user, _pw in TELNET_CREDENTIALS)

    def test_exploit_hit_sends_classifiable_payload(self):
        bot = mirai_bot()
        payload, vuln = bot.attack_payload_for_port(8080)
        assert vuln is BY_KEY["CVE-2018-10561"]
        assert classify_exploit(payload) is vuln
        assert b"8UsA.sh" in payload

    def test_unarmed_port_gets_plain_probe(self):
        payload, vuln = mirai_bot().attack_payload_for_port(37215)
        assert vuln is None
        assert payload.startswith(b"GET / ")


class TestP2p:
    def test_bootstrap_sends_dht_queries(self):
        config = BotConfig(
            family="mozi",
            p2p_bootstrap=["203.0.113.1:6881", "203.0.113.2:6881"],
        )
        bot = Bot(config, BOT_IP, random.Random(0))
        adapter = RecordingAdapter()
        assert bot.p2p_bootstrap(adapter) == 2
        assert len(adapter.datagrams) == 2
        for pkt in adapter.datagrams:
            assert pkt.protocol == Protocol.UDP
            assert p2p.is_dht_query(pkt.payload)

    def test_default_bootstrap_port(self):
        config = BotConfig(family="mozi", p2p_bootstrap=["203.0.113.1"])
        bot = Bot(config, BOT_IP, random.Random(0))
        adapter = RecordingAdapter()
        bot.p2p_bootstrap(adapter)
        assert adapter.datagrams[0].dport == p2p.MOZI_BOOTSTRAP_PORT


class TestAttackExecution:
    def test_emits_packets_through_adapter(self):
        adapter = RecordingAdapter()
        command = AttackCommand("udp", TARGET, 80, 60)
        count = mirai_bot().execute_attack(adapter, command, start_time=0.0)
        assert count == len(adapter.datagrams) > 0
        assert all(p.dst == TARGET for p in adapter.datagrams)

    def test_variant_b_rotates_source_ports(self):
        adapter_a = RecordingAdapter()
        adapter_b = RecordingAdapter()
        command = AttackCommand("udp", TARGET, 80, 60)
        mirai_bot(variant="mirai.a").execute_attack(adapter_a, command, 0.0)
        mirai_bot(variant="mirai.b").execute_attack(adapter_b, command, 0.0)
        assert len({p.sport for p in adapter_a.datagrams}) == 1
        assert len({p.sport for p in adapter_b.datagrams}) > 10

    def test_checkin_payload_unknown_for_p2p(self):
        bot = Bot(BotConfig(family="mozi"), BOT_IP, random.Random(0))
        with pytest.raises(ValueError):
            bot.checkin_payload()
