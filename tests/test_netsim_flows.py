"""Tests for flow aggregation."""

import random

from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.flows import FlowKey, FlowTable
from repro.netsim.packet import Protocol, TcpFlags, tcp_packet, udp_packet
from repro.netsim.tcp import handshake_pair

BOT = ip_to_int("198.51.100.1")
C2 = ip_to_int("203.0.113.1")
VICTIM = ip_to_int("192.0.2.1")


class TestFlowKey:
    def test_direction_normalized(self):
        fwd = tcp_packet(BOT, C2, 4000, 23, TcpFlags.SYN)
        rev = tcp_packet(C2, BOT, 23, 4000, TcpFlags.ACK)
        assert FlowKey.for_packet(fwd) == FlowKey.for_packet(rev)

    def test_distinct_ports_distinct_flows(self):
        a = tcp_packet(BOT, C2, 4000, 23, TcpFlags.SYN)
        b = tcp_packet(BOT, C2, 4001, 23, TcpFlags.SYN)
        assert FlowKey.for_packet(a) != FlowKey.for_packet(b)


class TestFlowTable:
    def handshake_capture(self):
        rng = random.Random(0)
        _, _, trace = handshake_pair(BOT, C2, 4000, 23, rng)
        return Capture(trace)

    def test_handshake_is_one_flow(self):
        table = FlowTable.from_capture(self.handshake_capture())
        assert len(table) == 1
        (flow,) = table.flows()
        assert flow.initiator == BOT
        assert flow.responder == C2
        assert flow.handshake_completed
        assert flow.bidirectional

    def test_counts_and_bytes(self):
        table = FlowTable.from_capture(self.handshake_capture())
        (flow,) = table.flows()
        assert flow.packets_fwd == 2  # SYN + ACK
        assert flow.packets_rev == 1  # SYN-ACK
        assert flow.total_packets == 3
        assert flow.total_bytes == sum(p.size for p in self.handshake_capture())

    def test_payload_reassembly_by_direction(self):
        table = FlowTable()
        table.observe(udp_packet(BOT, C2, 4000, 53, b"que", timestamp=0.0))
        table.observe(udp_packet(C2, BOT, 53, 4000, b"ans", timestamp=0.1))
        table.observe(udp_packet(BOT, C2, 4000, 53, b"ry", timestamp=0.2))
        (flow,) = table.flows()
        assert bytes(flow.payload_fwd) == b"query"
        assert bytes(flow.payload_rev) == b"ans"

    def test_packet_rate(self):
        table = FlowTable()
        for i in range(101):
            table.observe(udp_packet(BOT, VICTIM, 4000, 80, b"x", timestamp=i * 0.001))
        (flow,) = table.flows()
        assert flow.packet_rate() > 100

    def test_rate_zero_for_single_packet(self):
        table = FlowTable()
        table.observe(udp_packet(BOT, VICTIM, 1, 2, b"x", timestamp=5.0))
        (flow,) = table.flows()
        assert flow.packet_rate() == 0.0

    def test_rst_and_fin_flags_recorded(self):
        table = FlowTable()
        table.observe(tcp_packet(BOT, C2, 1, 2, TcpFlags.RST, timestamp=0))
        table.observe(tcp_packet(BOT, C2, 3, 2, TcpFlags.FIN | TcpFlags.ACK, timestamp=0))
        flows = table.flows()
        assert any(f.rst_seen for f in flows)
        assert any(f.fin_seen for f in flows)


class TestStudyQueries:
    def scanning_table(self):
        """A bot scanning 25 hosts on port 23 and 3 hosts on port 80."""
        table = FlowTable()
        base = ip_to_int("192.0.2.0")
        t = 0.0
        for i in range(25):
            table.observe(
                tcp_packet(BOT, base + 1 + i, 40000 + i, 23, TcpFlags.SYN, timestamp=t)
            )
            t += 0.01
        for i in range(3):
            table.observe(
                tcp_packet(BOT, base + 100 + i, 41000 + i, 80, TcpFlags.SYN, timestamp=t)
            )
            t += 0.01
        return table

    def test_port_fanout(self):
        fanout = self.scanning_table().port_fanout(BOT)
        assert len(fanout[23]) == 25
        assert len(fanout[80]) == 3

    def test_fanout_threshold_selects_scan_port(self):
        # the paper's handshaker picks ports contacted on >20 distinct IPs
        fanout = self.scanning_table().port_fanout(BOT)
        popular = {port for port, ips in fanout.items() if len(ips) > 20}
        assert popular == {23}

    def test_contacted_hosts(self):
        table = self.scanning_table()
        assert len(table.contacted_hosts(BOT)) == 28

    def test_flows_from_filters_initiator(self):
        table = self.scanning_table()
        assert table.flows_from(VICTIM) == []
        assert len(table.flows_from(BOT)) == 28
