"""Tests for DNS wire format and the resolver."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addresses import ip_to_int
from repro.netsim.dns import (
    DnsError,
    DnsQuery,
    DnsResponse,
    RCODE_NXDOMAIN,
    Resolver,
    decode_message,
    decode_name,
    encode_name,
)

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10)
domains = st.lists(label, min_size=1, max_size=4).map(".".join)


class TestNameCodec:
    def test_roundtrip_simple(self):
        data = encode_name("cnc.example.com")
        name, offset = decode_name(data, 0)
        assert name == "cnc.example.com"
        assert offset == len(data)

    @given(domains)
    def test_roundtrip_property(self, name):
        decoded, _ = decode_name(encode_name(name), 0)
        assert decoded == name

    def test_trailing_dot_normalized(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_rejects_empty(self):
        with pytest.raises(DnsError):
            encode_name("")

    def test_rejects_long_label(self):
        with pytest.raises(DnsError):
            encode_name("x" * 64 + ".com")

    def test_rejects_truncated(self):
        with pytest.raises(DnsError):
            decode_name(b"\x05abc", 0)

    def test_non_ascii_label_raises_dns_error(self):
        # regression: used to escape as UnicodeEncodeError
        with pytest.raises(DnsError):
            encode_name("cncé.example")

    def test_non_ascii_wire_label_raises_dns_error(self):
        # regression: used to escape as UnicodeDecodeError
        with pytest.raises(DnsError):
            decode_name(b"\x02\xc3\xa9\x00", 0)


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = DnsQuery(0x1234, "bot.evil.example")
        decoded = decode_message(query.encode())
        assert isinstance(decoded, DnsQuery)
        assert decoded.transaction_id == 0x1234
        assert decoded.name == "bot.evil.example"

    def test_response_roundtrip(self):
        addr = ip_to_int("203.0.113.5")
        response = DnsResponse(0x42, "c2.example", [addr], ttl=60)
        decoded = decode_message(response.encode())
        assert isinstance(decoded, DnsResponse)
        assert decoded.addresses == [addr]
        assert decoded.ttl == 60
        assert not decoded.is_nxdomain

    def test_nxdomain_roundtrip(self):
        response = DnsResponse(0x42, "gone.example", rcode=RCODE_NXDOMAIN)
        decoded = decode_message(response.encode())
        assert decoded.is_nxdomain
        assert decoded.addresses == []

    def test_multiple_answers(self):
        addrs = [ip_to_int("203.0.113.5"), ip_to_int("203.0.113.6")]
        decoded = decode_message(DnsResponse(1, "multi.example", addrs).encode())
        assert decoded.addresses == addrs

    def test_short_message_rejected(self):
        with pytest.raises(DnsError):
            decode_message(b"\x00\x01")

    @given(domains, st.integers(min_value=0, max_value=0xFFFF))
    def test_query_roundtrip_property(self, name, txid):
        decoded = decode_message(DnsQuery(txid, name).encode())
        assert decoded.name == name and decoded.transaction_id == txid


class TestResolver:
    def test_register_and_resolve(self):
        resolver = Resolver()
        addr = ip_to_int("203.0.113.9")
        resolver.register("c2.example", addr)
        assert resolver.resolve("c2.example") == addr
        assert resolver.resolve("C2.EXAMPLE") == addr  # case-insensitive

    def test_unknown_name(self):
        assert Resolver().resolve("nope.example") is None

    def test_time_varying_binding(self):
        resolver = Resolver()
        first = ip_to_int("203.0.113.9")
        second = ip_to_int("203.0.113.10")
        resolver.register("c2.example", first, since=0.0)
        resolver.register("c2.example", second, since=100.0)
        resolver.register("c2.example", None, since=200.0)
        assert resolver.resolve("c2.example", now=50) == first
        assert resolver.resolve("c2.example", now=150) == second
        assert resolver.resolve("c2.example", now=250) is None

    def test_answer_builds_wire_response(self):
        resolver = Resolver()
        addr = ip_to_int("203.0.113.9")
        resolver.register("c2.example", addr)
        response = resolver.answer(DnsQuery(7, "c2.example"))
        assert response.addresses == [addr]
        missing = resolver.answer(DnsQuery(8, "other.example"))
        assert missing.is_nxdomain

    def test_lifetime_end_exclusive(self):
        """Pin the deregistration fencepost: a server online over
        [online_from, online_until) must stop resolving AT online_until."""
        resolver = Resolver()
        addr = ip_to_int("203.0.113.9")
        online_from, online_until = 1000.0, 5000.0
        resolver.register("c2.example", addr, since=online_from)
        resolver.register("c2.example", None, since=online_until)
        assert resolver.resolve("c2.example", now=online_from) == addr
        assert resolver.resolve("c2.example", now=online_until - 1e-6) == addr
        assert resolver.resolve("c2.example", now=online_until) is None

    def test_known_names_sorted(self):
        resolver = Resolver()
        resolver.register("b.example", 1)
        resolver.register("a.example", 2)
        assert resolver.known_names() == ["a.example", "b.example"]
