"""Tests for the YARA engine, AVClass2 labeling, and the two feeds."""

import random

import pytest

from repro.binary.builder import build_sample
from repro.binary.config import BotConfig
from repro.feeds.avclass import label_sample, normalize_token, tokenize
from repro.feeds.malwarebazaar import MalwareBazaarService
from repro.feeds.virustotal import (
    DETECTION_THRESHOLD,
    VirusTotalService,
    ENGINE_COUNT,
)
from repro.feeds.yara import RuleError, RuleSet, YaraRule, community_iot_rules
from repro.intel.vendors import IocIntel


def sample_for(family, seed=0, **kwargs):
    config = BotConfig(family=family, c2_host="203.0.113.9", c2_port=23, **kwargs)
    if family in ("mozi", "hajime"):
        config = BotConfig(family=family, p2p_bootstrap=["203.0.113.9:6881"])
    return build_sample(config, random.Random(seed))


class TestYara:
    def test_any_condition(self):
        rule = YaraRule("r", (b"aaa", b"bbb"), condition="any")
        assert rule.matches(b"xxbbbxx")
        assert not rule.matches(b"zzz")

    def test_all_condition(self):
        rule = YaraRule("r", (b"aaa", b"bbb"), condition="all")
        assert rule.matches(b"aaabbb")
        assert not rule.matches(b"aaa")

    def test_threshold_condition(self):
        rule = YaraRule("r", (b"a1", b"b2", b"c3"), condition=2)
        assert rule.matches(b"a1-c3")
        assert not rule.matches(b"a1")

    def test_validation(self):
        with pytest.raises(RuleError):
            YaraRule("r", ())
        with pytest.raises(RuleError):
            YaraRule("r", (b"a",), condition=5)
        with pytest.raises(RuleError):
            YaraRule("r", (b"a",), condition="most")

    def test_ruleset_duplicate_names(self):
        rules = RuleSet([YaraRule("r", (b"a",))])
        with pytest.raises(RuleError):
            rules.add(YaraRule("r", (b"b",)))

    @pytest.mark.parametrize(
        "family", ["mirai", "gafgyt", "tsunami", "daddyl33t", "mozi", "hajime",
                   "vpnfilter"],
    )
    def test_community_rules_label_every_family(self, family):
        rules = community_iot_rules()
        families = rules.families(sample_for(family).data)
        assert families == [family]


class TestAvclass:
    def test_tokenize(self):
        assert tokenize("Linux.Mirai.A!tr") == ["linux", "mirai", "a", "tr"]

    def test_generic_tokens_dropped(self):
        assert normalize_token("linux") is None
        assert normalize_token("trojan") is None
        assert normalize_token("mirai") == "mirai"

    def test_alias_expansion(self):
        assert normalize_token("bashlite") == "gafgyt"
        assert normalize_token("kaiten") == "tsunami"

    def test_plurality_vote(self):
        labels = ["Linux.Mirai.A", "ELF:Mirai-B", "Linux.Gafgyt.C"]
        assert label_sample(labels) == "mirai"

    def test_singleton_returns_none(self):
        assert label_sample(["Linux.Mirai.A"]) is None
        assert label_sample(["Trojan.Linux.Generic"]) is None
        assert label_sample([]) is None


class TestVirusTotalScan:
    @pytest.fixture(scope="class")
    def vt(self):
        return VirusTotalService(random.Random(0))

    def test_detection_threshold_met(self, vt):
        report = vt.scan(sample_for("mirai"), now=0.0)
        assert report.positives >= DETECTION_THRESHOLD
        assert report.positives <= ENGINE_COUNT

    def test_scan_deterministic(self, vt):
        a = vt.scan(sample_for("gafgyt"), now=0.0)
        b = vt.scan(sample_for("gafgyt"), now=0.0)
        assert a.detections == b.detections

    def test_avclass_on_vt_labels_matches_family(self, vt):
        report = vt.scan(sample_for("gafgyt"), now=0.0)
        assert label_sample(report.engine_labels) == "gafgyt"

    def test_mozi_mislabeled_as_mirai_by_avclass(self, vt):
        """The paper's documented AVClass2 failure mode (section 2.2)."""
        report = vt.scan(sample_for("mozi"), now=0.0)
        assert label_sample(report.engine_labels) == "mirai"

    def test_yara_gets_mozi_right(self, vt):
        report = vt.scan(sample_for("mozi"), now=0.0)
        assert report.yara_families == ["mozi"]


class TestFeeds:
    def test_vt_feed_latency_within_24h(self):
        vt = VirusTotalService(random.Random(1))
        entry = vt.submit_sample(sample_for("mirai"), when=1000.0)
        assert 0.0 <= entry.published - entry.submitted <= 24 * 3600.0

    def test_vt_feed_between(self):
        vt = VirusTotalService(random.Random(1))
        entry = vt.submit_sample(sample_for("mirai"), when=1000.0)
        assert vt.feed_between(entry.published, entry.published + 1) == [entry]
        assert vt.feed_between(0, entry.published) == []

    def test_vt_resubmission_idempotent(self):
        vt = VirusTotalService(random.Random(1))
        sample = sample_for("mirai")
        first = vt.submit_sample(sample, when=1000.0)
        second = vt.submit_sample(sample, when=9999.0)
        assert first is second
        assert vt.lookup_hash(sample.sha256) is first

    def test_bazaar_tags_and_source(self):
        bazaar = MalwareBazaarService(random.Random(2))
        entry = bazaar.submit_sample(sample_for("gafgyt"), when=0.0)
        assert "gafgyt" in entry.tags and "mips" in entry.tags
        assert entry.source.startswith("osint-")
        assert len(bazaar) == 1

    def test_bazaar_lookup(self):
        bazaar = MalwareBazaarService(random.Random(2))
        sample = sample_for("gafgyt")
        entry = bazaar.submit_sample(sample, when=0.0)
        assert bazaar.lookup_hash(sample.sha256) is entry
        assert bazaar.lookup_hash("0" * 64) is None


class TestVtThreatIntel:
    def test_unknown_ioc_benign(self):
        vt = VirusTotalService(random.Random(0))
        assert not vt.is_malicious("203.0.113.77", query_time=10**9)

    def test_registered_ioc_flagged_later(self):
        vt = VirusTotalService(random.Random(0))
        vt.register_ioc(IocIntel(
            ioc="203.0.113.77", first_public=10**9, obscurity=0.1,
            publicity_delay_days=2.0,
        ))
        assert not vt.is_malicious("203.0.113.77", query_time=10**9 + 3600)
        assert vt.is_malicious("203.0.113.77", query_time=10**9 + 40 * 86400)
        assert vt.eventual_vendor_count("203.0.113.77") > 5
