"""Tests for the family registry (paper Table 6)."""

import pytest

from repro.botnet.families import (
    ATTACK_FAMILIES,
    C2Dialect,
    FAMILIES,
    c2_families,
    family_table,
    get_family,
)


class TestRegistry:
    def test_seven_families(self):
        assert len(FAMILIES) == 7
        assert set(FAMILIES) == {
            "mirai", "gafgyt", "tsunami", "daddyl33t", "mozi", "hajime",
            "vpnfilter",
        }

    def test_lookup_case_insensitive(self):
        assert get_family("MIRAI") is FAMILIES["mirai"]

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            get_family("emotet")

    def test_p2p_families(self):
        assert FAMILIES["mozi"].is_p2p
        assert FAMILIES["hajime"].is_p2p
        assert not FAMILIES["mirai"].is_p2p

    def test_c2_families_excludes_p2p(self):
        names = {fam.name for fam in c2_families()}
        assert "mozi" not in names and "hajime" not in names
        assert len(names) == 5

    def test_dialects(self):
        assert FAMILIES["mirai"].dialect == C2Dialect.MIRAI_BINARY
        assert FAMILIES["gafgyt"].dialect == C2Dialect.GAFGYT_TEXT
        assert FAMILIES["tsunami"].dialect == C2Dialect.IRC
        assert FAMILIES["mozi"].dialect == C2Dialect.P2P

    def test_only_mirai_obfuscates_config(self):
        assert FAMILIES["mirai"].obfuscated_config
        assert not any(
            fam.obfuscated_config for name, fam in FAMILIES.items() if name != "mirai"
        )

    def test_attack_families_match_section5(self):
        assert set(ATTACK_FAMILIES) == {"mirai", "gafgyt", "daddyl33t"}
        for name in ATTACK_FAMILIES:
            assert len(FAMILIES[name].variants) == 2  # two variants each (§5)

    def test_attack_methods_cover_section_5_1(self):
        assert "vse" in FAMILIES["mirai"].attack_methods
        assert "vse" in FAMILIES["gafgyt"].attack_methods  # one Gafgyt VSE seen
        assert "blacknurse" in FAMILIES["daddyl33t"].attack_methods
        assert "nfo" in FAMILIES["daddyl33t"].attack_methods
        assert "std" in FAMILIES["gafgyt"].attack_methods

    def test_family_table_rows(self):
        rows = family_table()
        assert len(rows) == 7
        assert all(description for _name, description in rows)
