"""Cross-shard telemetry merge: units and the parallel == serial invariant.

The tentpole property: a ``--workers N --telemetry`` study produces the
same counter and histogram totals as the serial run — per-sample series
sum exactly (every decision is a pure function of ``(seed, sample)``),
and world-global feed series are taken from one shard instead of summed.
"""

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.study import run_study
from repro.netsim.faults import FAULT_PLANS
from repro.obs import (
    EventLog,
    MetricsRegistry,
    Span,
    Tracer,
    create_telemetry,
    fold_histograms,
    fold_metrics,
    graft_span_tree,
    merge_shard_telemetry,
)
from repro.obs.merge import is_world_global
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 1337


# -- metric folding units -----------------------------------------------------


def test_fold_histograms_adds_bucketwise():
    worker = MetricsRegistry()
    h = worker.histogram("latency", "help", buckets=(1.0, 5.0))
    for value in (0.5, 0.7, 3.0, 99.0):
        h.observe(value)
    snapshot = worker.snapshot()

    parent = MetricsRegistry()
    parent.histogram("latency", "help", buckets=(1.0, 5.0)).observe(2.0)
    fold_histograms(parent, snapshot)
    fold_histograms(parent, snapshot)
    child = parent.get("latency").labels()
    assert child.counts == [4, 3, 2]
    assert child.count == 9
    assert child.sum == pytest.approx(2.0 + 2 * (0.5 + 0.7 + 3.0 + 99.0))
    # the snapshot round-trips exact cumulative buckets
    assert child.snapshot()["buckets"] == {"1.0": 4, "5.0": 7, "+Inf": 9}


def test_fold_histograms_creates_family_with_source_buckets():
    worker = MetricsRegistry()
    worker.histogram("h", buckets=(0.25, 2.0)).observe(1.0)
    parent = MetricsRegistry()
    fold_histograms(parent, worker.snapshot())
    assert parent.get("h").labels().buckets == (0.25, 2.0)
    assert parent.get("h").labels().count == 1


def test_world_global_series_recognized():
    assert is_world_global("feed_latency_seconds", {"feed": "virustotal"})
    assert is_world_global("pipeline_retries", {"stage": "feed"})
    assert not is_world_global("pipeline_retries", {"stage": "sandbox"})
    assert is_world_global("fault_injections", {"kind": "feed_outage"})
    assert not is_world_global("fault_injections", {"kind": "syn_drop"})
    assert not is_world_global("samples_collected", {})


def test_fold_metrics_skips_world_global_unless_elected():
    worker = MetricsRegistry()
    worker.histogram("feed_latency_seconds", labelnames=("feed",),
                     buckets=(1.0,)).labels(feed="vt").observe(0.5)
    worker.counter("pipeline_retries", labelnames=("stage",)) \
        .labels(stage="feed").inc(3)
    worker.counter("pipeline_retries", labelnames=("stage",)) \
        .labels(stage="sandbox").inc(2)
    snapshot = worker.snapshot()

    parent = MetricsRegistry()
    fold_metrics(parent, snapshot, world_global=True)   # shard 0
    fold_metrics(parent, snapshot, world_global=False)  # every other shard
    assert parent.value("pipeline_retries", stage="feed") == 3
    assert parent.value("pipeline_retries", stage="sandbox") == 4
    assert parent.get("feed_latency_seconds").labels(feed="vt").count == 1


# -- span snapshot / graft ----------------------------------------------------


def test_span_dict_round_trip():
    tracer = Tracer()
    with tracer.span("outer", day=3) as outer:
        with tracer.span("inner"):
            pass
        outer.set_attribute("late", True)
    record = tracer.tree()[0]
    restored = Span.from_dict(record)
    assert restored.name == "outer"
    assert restored.attributes == {"day": 3, "late": True}
    assert [c.name for c in restored.children] == ["inner"]
    assert restored.to_dict() == record


def test_graft_span_tree_rebuilds_under_shard_root():
    worker = Tracer()
    with worker.span("pipeline.run_day", day=0):
        with worker.span("sandbox.analyze"):
            pass
    with worker.span("pipeline.run_day", day=1):
        pass
    snapshot = worker.snapshot()

    parent = Tracer()
    with parent.span("study.pipeline") as pipeline:
        pass
    root = graft_span_tree(parent, snapshot, "shard[1]", parent=pipeline,
                           wall_seconds=1.5, shard=1, attempt=0)
    assert root.name == "shard[1]"
    assert root.attributes == {"shard": 1, "attempt": 0}
    assert root.wall_elapsed == 1.5
    assert [c.name for c in root.children] == ["pipeline.run_day",
                                               "pipeline.run_day"]
    # grafted under the parent's pipeline span, not as a new root
    assert [r.name for r in parent.roots] == ["study.pipeline"]
    assert parent.roots[0].children[0] is root
    aggregate = parent.aggregate()
    assert aggregate["pipeline.run_day"]["count"] == 2
    assert aggregate["sandbox.analyze"]["count"] == 1
    assert aggregate["shard[1]"]["count"] == 1


def test_event_absorb_tags_shard_and_seq():
    worker = EventLog()
    worker.emit("a", day=1)
    worker.emit("b", day=2)
    parent = EventLog()
    parent.emit("parent.start")
    assert parent.absorb(worker.snapshot(), shard=3) == 2
    tagged = parent.events[1:]
    assert [(r["event"], r["shard"], r["seq"]) for r in tagged] == \
        [("a", 3, 0), ("b", 3, 1)]
    assert "shard" not in parent.events[0]


def test_merge_shard_telemetry_one_call(tmp_path):
    worker = create_telemetry()
    worker.metrics.counter("samples_collected").inc(5)
    with worker.tracer.span("pipeline.run_day"):
        pass
    worker.events.emit("pipeline.day", day=0)

    parent = create_telemetry()
    merge_shard_telemetry(
        parent, 2,
        metrics_snapshot=worker.metrics.snapshot(),
        trace_snapshot=worker.tracer.snapshot(),
        events_snapshot=worker.events.snapshot(),
        wall_seconds=0.25, attempt=1)
    assert parent.metrics.value("samples_collected") == 5
    assert [r.name for r in parent.tracer.roots] == ["shard[2]"]
    assert parent.tracer.roots[0].attributes["attempt"] == 1
    assert parent.events.events[0]["shard"] == 2


# -- the invariant: merged parallel totals == serial --------------------------


def _totals(workers, config):
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    run_study(world, config=config, telemetry=telemetry, workers=workers)
    counters = {
        (family.name, tuple(sorted(labels.items()))): child.value
        for family in telemetry.metrics.families()
        if family.kind == "counter"
        for labels, child in family.series()
    }
    histograms = {
        (family.name, tuple(sorted(labels.items()))):
            (list(child.counts), child.sum, child.count)
        for family in telemetry.metrics.families()
        if family.kind == "histogram"
        for labels, child in family.series()
    }
    return counters, histograms


@pytest.fixture(scope="module", params=[None, "mild"])
def serial_totals(request):
    config = (PipelineConfig(faults=FAULT_PLANS[request.param])
              if request.param else None)
    return config, _totals(None, config)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_merged_parallel_totals_equal_serial(workers, serial_totals):
    config, (serial_counters, serial_histograms) = serial_totals
    counters, histograms = _totals(workers, config)
    assert counters == serial_counters
    assert set(histograms) == set(serial_histograms)
    for key, (counts, total, count) in histograms.items():
        serial_counts, serial_sum, serial_count = serial_histograms[key]
        assert counts == serial_counts, key
        assert count == serial_count, key
        # summation order differs between the serial and folded paths
        assert total == pytest.approx(serial_sum), key


def test_parallel_run_keeps_full_trace_and_events():
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    run_study(world, telemetry=telemetry, workers=2)
    aggregate = telemetry.tracer.aggregate()
    # worker-side stages survive the merge, re-rooted per shard
    assert aggregate["pipeline.run_day"]["count"] > 0
    assert aggregate["sandbox.analyze"]["count"] > 0
    assert aggregate["shard[0]"]["count"] == 1
    assert aggregate["shard[1]"]["count"] == 1
    shard_tags = {r.get("shard") for r in
                  (e for e in (dict(ev) for ev in telemetry.events.events))}
    assert {0, 1} <= shard_tags
