"""Adversarial-input tests: every decoder fails *cleanly* on junk.

The pipeline feeds untrusted bytes (feed downloads, captured payloads,
C2 streams) into parsers; none of them may raise anything but their own
error type, hang, or succeed on garbage in dangerous ways.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binary.config import BotConfig, ConfigError, unpack_config
from repro.binary.elf import ElfError, ElfImage
from repro.botnet.protocols import daddyl33t, gafgyt, irc, mirai, p2p
from repro.botnet.protocols.base import ProtocolError
from repro.netsim.capture import CaptureError, PcapReader
from repro.netsim.dns import DnsError, decode_message
from repro.netsim.packet import PacketError, decode_packet

junk = st.binary(min_size=0, max_size=512)


class TestPacketFuzz:
    @given(junk)
    def test_decode_packet_never_crashes(self, data):
        try:
            decode_packet(data)
        except PacketError:
            pass

    @given(junk)
    def test_decode_with_valid_prefix(self, data):
        # a correct version/IHL byte must not bypass validation
        try:
            decode_packet(b"\x45" + data)
        except PacketError:
            pass


class TestPcapFuzz:
    @given(junk)
    def test_reader_never_crashes(self, data):
        import io

        try:
            list(PcapReader(io.BytesIO(data)))
        except CaptureError:
            pass

    @given(junk)
    def test_reader_with_valid_magic(self, data):
        import io
        import struct

        header = struct.pack("!IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        try:
            list(PcapReader(io.BytesIO(header + data)))
        except (CaptureError, PacketError):
            pass


class TestElfFuzz:
    @given(junk)
    def test_parse_never_crashes(self, data):
        try:
            ElfImage.parse(data)
        except ElfError:
            pass

    @given(junk)
    def test_parse_with_magic_prefix(self, data):
        try:
            ElfImage.parse(b"\x7fELF\x01\x02\x01" + data)
        except ElfError:
            pass


class TestConfigFuzz:
    @given(junk)
    def test_unpack_never_crashes(self, data):
        try:
            unpack_config(data)
        except ConfigError:
            pass

    @given(junk)
    def test_decode_with_magic_prefix(self, data):
        try:
            BotConfig.decode(b"BCFG" + data)
        except ConfigError:
            pass


class TestDnsFuzz:
    @given(junk)
    def test_decode_message_never_crashes(self, data):
        try:
            decode_message(data)
        except DnsError:
            pass


class TestProtocolFuzz:
    """The stream profilers are *total*: garbage yields an empty list."""

    @given(junk)
    def test_mirai_profiler_total(self, data):
        assert isinstance(mirai.extract_commands(data), list)

    @given(junk)
    def test_gafgyt_profiler_total(self, data):
        assert isinstance(gafgyt.extract_commands(data), list)

    @given(junk)
    def test_daddyl33t_profiler_total(self, data):
        assert isinstance(daddyl33t.extract_commands(data), list)

    @given(junk)
    def test_irc_profiler_total(self, data):
        assert isinstance(irc.extract_commands(data), list)

    @given(junk)
    def test_bdecode_never_crashes(self, data):
        try:
            p2p.bdecode(data)
        except ProtocolError:
            pass

    @given(junk)
    def test_dht_classifier_total(self, data):
        assert isinstance(p2p.is_dht_query(data), bool)

    @given(junk)
    def test_mirai_checkin_decode(self, data):
        try:
            mirai.decode_checkin(data)
        except ProtocolError:
            pass


class TestClassifierFuzz:
    @given(junk)
    def test_exploit_classifier_total(self, data):
        from repro.botnet.exploits import classify_exploit, extract_loader

        classify_exploit(data)  # returns Vulnerability | None
        extract_loader(data)    # returns str | None

    @given(junk)
    def test_strings_extraction_total(self, data):
        from repro.binary.strings import extract_ips, extract_strings

        assert isinstance(extract_strings(data), list)
        assert isinstance(extract_ips(data), list)

    @given(junk)
    def test_ddos_profile_stream_total(self, data):
        from repro.analysis.ddos_detect import profile_stream

        assert isinstance(profile_stream(data), list)
