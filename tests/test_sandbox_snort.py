"""Tests for the SNORT-style containment layer."""

import random

import pytest

from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.packet import udp_packet
from repro.sandbox.snort import (
    EgressPolicy,
    FilteredAdapter,
    PolicyMode,
    SnortIds,
)

BOT = ip_to_int("100.64.13.37")
C2 = ip_to_int("203.0.113.10")
VICTIM = ip_to_int("192.0.2.50")


def flood(dst, count, start=0.0, rate=1000.0):
    return [
        udp_packet(BOT, dst, 4000, 80, b"\x00", timestamp=start + i / rate)
        for i in range(count)
    ]


class TestEgressPolicy:
    def test_block_all(self):
        policy = EgressPolicy(PolicyMode.BLOCK_ALL)
        assert not policy.permits(udp_packet(BOT, C2, 1, 2))

    def test_c2_only(self):
        policy = EgressPolicy(PolicyMode.C2_ONLY, frozenset({C2}))
        assert policy.permits(udp_packet(BOT, C2, 1, 2))
        assert not policy.permits(udp_packet(BOT, VICTIM, 1, 2))

    def test_call_home_only_same_semantics(self):
        policy = EgressPolicy(PolicyMode.CALL_HOME_ONLY, frozenset({C2}))
        assert policy.permits(udp_packet(BOT, C2, 1, 2))


class TestSnortIds:
    def test_contained_vs_released(self):
        ids = SnortIds(EgressPolicy(PolicyMode.C2_ONLY, frozenset({C2})))
        assert ids.inspect(udp_packet(BOT, C2, 1, 2, timestamp=0.0))
        assert not ids.inspect(udp_packet(BOT, VICTIM, 1, 2, timestamp=0.0))
        assert len(ids.released) == 1
        assert len(ids.contained) == 1

    def test_flood_alert_fires_once_per_bucket(self):
        ids = SnortIds(EgressPolicy(PolicyMode.BLOCK_ALL), flood_threshold=100)
        for pkt in flood(VICTIM, 250):
            ids.inspect(pkt)
        assert len(ids.flood_alerts) == 1
        assert ids.flood_alerts[0].dst == VICTIM
        assert "flood" in ids.flood_alerts[0].message

    def test_slow_traffic_no_alert(self):
        ids = SnortIds(EgressPolicy(PolicyMode.BLOCK_ALL), flood_threshold=100)
        for pkt in flood(VICTIM, 50, rate=10.0):
            ids.inspect(pkt)
        assert ids.flood_alerts == []

    def test_allow_host_extends_policy(self):
        ids = SnortIds(EgressPolicy(PolicyMode.C2_ONLY, frozenset()))
        assert not ids.inspect(udp_packet(BOT, C2, 1, 2, timestamp=0.0))
        ids.allow_host(C2)
        assert ids.inspect(udp_packet(BOT, C2, 1, 2, timestamp=1.0))


class FakeInner:
    def __init__(self):
        self.sent = []
        self.connects = []

    def tcp_connect(self, dst, port, trace=None):
        self.connects.append((dst, port))
        return object()

    def send_datagram(self, pkt, trace=None):
        self.sent.append(pkt)

    def dns_lookup(self, name, trace=None):
        return 0x01020304


class TestFilteredAdapter:
    def make(self, allowed=frozenset()):
        inner = FakeInner()
        ids = SnortIds(EgressPolicy(PolicyMode.C2_ONLY, frozenset(allowed)))
        return inner, ids, FilteredAdapter(inner, ids, trace=Capture())

    def test_blocked_connect_never_reaches_network(self):
        inner, ids, adapter = self.make()
        assert adapter.tcp_connect(VICTIM, 80) is None
        assert inner.connects == []
        assert len(ids.contained) == 1

    def test_allowed_connect_passes(self):
        inner, _ids, adapter = self.make(allowed={C2})
        assert adapter.tcp_connect(C2, 23) is not None
        assert inner.connects == [(C2, 23)]

    def test_blocked_datagram_captured_not_delivered(self):
        inner, ids, adapter = self.make(allowed={C2})
        adapter.send_datagram(udp_packet(BOT, VICTIM, 1, 2, timestamp=0.0))
        assert inner.sent == []
        assert len(ids.contained) == 1

    def test_allowed_datagram_delivered(self):
        inner, _ids, adapter = self.make(allowed={C2})
        adapter.send_datagram(udp_packet(BOT, C2, 1, 2, timestamp=0.0))
        assert len(inner.sent) == 1

    def test_dns_passthrough(self):
        _inner, _ids, adapter = self.make()
        assert adapter.dns_lookup("x.example") == 0x01020304

    def test_trace_records_all_datagrams(self):
        _inner, _ids, adapter = self.make(allowed={C2})
        trace = adapter._trace
        adapter.send_datagram(udp_packet(BOT, C2, 1, 2, timestamp=0.0))
        adapter.send_datagram(udp_packet(BOT, VICTIM, 1, 2, timestamp=0.1))
        assert len(trace) == 2
