"""Tests for the multi-architecture extension (paper §6d) and feed chaff."""

import random

import pytest

from repro.binary.builder import build_sample
from repro.binary.config import BotConfig
from repro.binary.elf import ARCH_MACHINES, EM_ARM, EM_MIPS, ElfImage, is_supported_elf
from repro.core.pipeline import MalNet, PipelineConfig
from repro.sandbox.qemu import EmulationError, MipsEmulator
from repro.world import StudyScale, generate_world


def config(family="gafgyt"):
    return BotConfig(family=family, c2_host="203.0.113.9", c2_port=666,
                     scan_ports=[23])


class TestArmBuilds:
    def test_arm_sample_is_arm_elf(self):
        sample = build_sample(config(), random.Random(0), arch="arm")
        image = ElfImage.parse(sample.data)
        assert image.machine == EM_ARM
        assert image.endianness == "little"

    def test_arm_config_recoverable(self):
        sample = build_sample(config(), random.Random(0), arch="arm")
        from repro.binary.config import unpack_config

        image = ElfImage.parse(sample.data)
        assert unpack_config(image.section(".config").data) == sample.config

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_sample(config(), random.Random(0), arch="riscv")

    def test_supported_elf_filter(self):
        mips = build_sample(config(), random.Random(0), arch="mips")
        arm = build_sample(config(), random.Random(1), arch="arm")
        mips_only = frozenset({EM_MIPS})
        both = frozenset({EM_MIPS, EM_ARM})
        assert is_supported_elf(mips.data, mips_only)
        assert not is_supported_elf(arm.data, mips_only)
        assert is_supported_elf(arm.data, both)
        assert not is_supported_elf(b"junk", both)

    def test_arch_machines_map(self):
        assert ARCH_MACHINES["mips"] == EM_MIPS
        assert ARCH_MACHINES["arm"] == EM_ARM


class TestMultiArchEmulator:
    def test_default_rejects_arm(self):
        emulator = MipsEmulator(random.Random(0))
        arm = build_sample(config(), random.Random(0), arch="arm")
        with pytest.raises(EmulationError, match="ARM"):
            emulator.load(arm.data)

    def test_extended_emulator_loads_arm(self):
        emulator = MipsEmulator(
            random.Random(0), machines=frozenset({EM_MIPS, EM_ARM})
        )
        arm = build_sample(config(), random.Random(0), arch="arm")
        sha256, recovered = emulator.load(arm.data)
        assert recovered == arm.config

    def test_arm_bot_behaves_like_mips_bot(self):
        emulator = MipsEmulator(
            random.Random(0), machines=frozenset({EM_ARM}),
            activation_rate=1.0,
        )
        arm = build_sample(config(), random.Random(0), arch="arm")
        process = emulator.run(arm.data, bot_ip=0x0A000002)
        assert process.bot.checkin_payload() == b"BUILD MIPS\n"


class TestMultiArchPipeline:
    @pytest.fixture(scope="class")
    def arm_world(self):
        scale = StudyScale(sample_fraction=0.04, probe_days=2,
                           observe_duration=900.0, arm_fraction=0.4,
                           scan_budget=60)
        return generate_world(seed=42, scale=scale)

    def test_mips_only_pipeline_drops_arm(self, arm_world):
        truth_archs = {
            s.sample.sha256: ElfImage.parse(s.sample.data).machine
            for s in arm_world.truth.all_samples
        }
        arm_count = sum(1 for m in truth_archs.values() if m == EM_ARM)
        assert arm_count > 5, "world should contain ARM samples"
        malnet = MalNet(arm_world, PipelineConfig(architectures=("mips",)))
        malnet.run()
        collected = {p.sha256 for p in malnet.datasets.profiles}
        for sha256, machine in truth_archs.items():
            if machine == EM_ARM:
                assert sha256 not in collected

    def test_extended_pipeline_collects_both(self, arm_world):
        malnet = MalNet(arm_world,
                        PipelineConfig(architectures=("mips", "arm")))
        malnet.run()
        collected = {p.sha256 for p in malnet.datasets.profiles}
        generated = {s.sample.sha256 for s in arm_world.truth.all_samples}
        assert collected == generated


class TestChaffFiltering:
    def test_chaff_present_in_feed_but_never_collected(self, smoke_study):
        world, malnet, _campaign, datasets = smoke_study
        assert world.truth.chaff_hashes, "generator should submit chaff"
        collected = {p.sha256 for p in datasets.profiles}
        assert not collected & world.truth.chaff_hashes
        # and the chaff really is in the VT feed
        some_chaff = next(iter(world.truth.chaff_hashes))
        assert world.vt.lookup_hash(some_chaff) is not None
