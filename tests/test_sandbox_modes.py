"""Integration tests for the CnCHunter sandbox's execution modes."""

import random

import pytest

from repro.binary.builder import build_sample
from repro.binary.config import BotConfig
from repro.botnet.c2server import C2Server, ScheduledAttack
from repro.botnet.exploits import KEY_TO_INDEX
from repro.botnet.families import get_family
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.internet import Listener, VirtualInternet
from repro.netsim.packet import Protocol
from repro.sandbox.qemu import MipsEmulator
from repro.sandbox.sandbox import CncHunterSandbox, SANDBOX_IP

C2_IP = ip_to_int("203.0.113.10")
C2_PORT = 1312
TARGET = ip_to_int("192.0.2.50")


def build_binary(family="gafgyt", c2_host=None, seed=3, **kwargs):
    config = BotConfig(
        family=family,
        c2_host=c2_host or int_to_ip(C2_IP),
        c2_port=C2_PORT,
        scan_ports=[23],
        exploit_ids=[KEY_TO_INDEX["CVE-2018-10561"]],
        loader_name="8UsA.sh",
        downloader=int_to_ip(C2_IP) + ":80",
        **kwargs,
    )
    return build_sample(config, random.Random(seed))


def sandbox_with_internet(schedule=None, family="gafgyt"):
    internet = VirtualInternet(random.Random(1))
    internet.add_host(SANDBOX_IP, "sandbox")
    host = internet.add_host(C2_IP, "c2")
    server = C2Server(get_family(family), random.Random(2), schedule=schedule)
    host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP, service=server))
    sandbox = CncHunterSandbox(
        random.Random(4), internet,
        emulator=MipsEmulator(random.Random(5), activation_rate=1.0),
    )
    return sandbox, internet, server


class TestOfflineMode:
    def offline_sandbox(self):
        return CncHunterSandbox(
            random.Random(0),
            emulator=MipsEmulator(random.Random(1), activation_rate=1.0),
        )

    def test_detects_ip_based_c2(self):
        report = self.offline_sandbox().analyze_offline(build_binary().data)
        assert report.activated
        assert report.c2_endpoint == int_to_ip(C2_IP)
        assert report.c2_port == C2_PORT
        assert not report.is_p2p

    def test_detects_domain_based_c2(self):
        binary = build_binary(c2_host="cnc.botnet.example")
        report = self.offline_sandbox().analyze_offline(binary.data)
        assert report.c2_endpoint == "cnc.botnet.example"

    @pytest.mark.parametrize("family", ["mirai", "gafgyt", "daddyl33t", "tsunami"])
    def test_all_dialects_detected(self, family):
        report = self.offline_sandbox().analyze_offline(
            build_binary(family=family).data
        )
        assert report.has_c2
        assert report.c2_candidates[0].confidence == 1.0

    def test_p2p_sample_flagged_not_c2(self):
        config = BotConfig(family="mozi", p2p_bootstrap=["203.0.113.1:6881"])
        binary = build_sample(config, random.Random(0))
        report = self.offline_sandbox().analyze_offline(binary.data)
        assert report.is_p2p
        assert not report.has_c2

    def test_exploits_extracted(self):
        report = self.offline_sandbox().analyze_offline(
            build_binary().data, scan_budget=400
        )
        assert report.exploits
        assert 8080 in report.scan_ports or 23 in report.scan_ports

    def test_capture_is_nonempty_and_pcap_serializable(self):
        report = self.offline_sandbox().analyze_offline(build_binary().data)
        assert len(report.capture) > 0
        from repro.netsim.capture import Capture

        restored = Capture.from_pcap_bytes(report.capture.to_pcap_bytes())
        assert len(restored) == len(report.capture)

    def test_unactivated_sample_reported(self):
        sandbox = CncHunterSandbox(
            random.Random(0),
            emulator=MipsEmulator(random.Random(1), activation_rate=0.0001),
        )
        report = sandbox.analyze_offline(build_binary().data)
        assert not report.activated
        assert not report.has_c2


class TestProbingMode:
    def test_live_c2_engages(self):
        sandbox, internet, _server = sandbox_with_internet()
        results = sandbox.probe_targets(
            build_binary().data, [(C2_IP, C2_PORT)]
        )
        assert results[0].engaged
        assert results[0].response

    def test_dead_target_does_not_engage(self):
        sandbox, _internet, _server = sandbox_with_internet()
        results = sandbox.probe_targets(
            build_binary().data,
            [(ip_to_int("192.0.2.99"), C2_PORT), (C2_IP, 9999)],
        )
        assert not results[0].engaged
        assert not results[1].engaged

    def test_probe_multiple_targets_order_preserved(self):
        sandbox, _internet, _server = sandbox_with_internet()
        targets = [(C2_IP, C2_PORT), (ip_to_int("192.0.2.99"), 1312)]
        results = sandbox.probe_targets(build_binary().data, targets)
        assert [(r.target, r.port) for r in results] == targets

    def test_probe_requires_internet(self):
        sandbox = CncHunterSandbox(random.Random(0))
        with pytest.raises(RuntimeError):
            sandbox.probe_targets(build_binary().data, [(C2_IP, C2_PORT)])


class TestLiveObservation:
    def test_eavesdrops_commands_and_contains_attack(self):
        command = AttackCommand("udp", TARGET, 80, 60)
        sandbox, internet, server = sandbox_with_internet()
        server.schedule_attack(internet.clock.now, command)
        report = sandbox.observe_live(
            build_binary().data, duration=600.0, poll_interval=60.0
        )
        assert report.connected
        assert report.c2_host == C2_IP
        assert command in report.commands
        # attack traffic was generated but contained (target not reachable)
        attack_packets = [p for p in report.contained if p.dst == TARGET]
        assert len(attack_packets) > 100
        assert report.alerts >= 1  # flood signature fired

    def test_server_stream_profilable(self):
        command = AttackCommand("udp", TARGET, 80, 60)
        sandbox, _internet, _server = sandbox_with_internet()
        _server.schedule_attack(_internet.clock.now, command)
        report = sandbox.observe_live(build_binary().data, duration=300.0)
        from repro.analysis.ddos_detect import profile_stream

        profiled = profile_stream(report.server_stream)
        assert any(p.command == command for p in profiled)

    def test_no_commands_when_schedule_empty(self):
        sandbox, _internet, _server = sandbox_with_internet()
        report = sandbox.observe_live(build_binary().data, duration=300.0)
        assert report.connected
        assert report.commands == []
        assert len(report.contained) == 0

    def test_unreachable_c2_reports_disconnected(self):
        sandbox, internet, _server = sandbox_with_internet()
        internet.host(C2_IP).set_lifetime(0, 1)  # long dead
        report = sandbox.observe_live(build_binary().data, duration=300.0)
        assert not report.connected
        assert report.commands == []
