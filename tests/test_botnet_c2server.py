"""Tests for C2 servers, responsiveness model, and bot/C2 interplay."""

import random

import pytest

from repro.binary.config import BotConfig
from repro.botnet.bot import Bot
from repro.botnet.c2server import (
    C2Server,
    DownloaderHttp,
    ResponsivenessModel,
    SLOT_SECONDS,
    observed_lifespan_days,
)
from repro.botnet.families import get_family
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.internet import Listener, VirtualInternet
from repro.netsim.packet import Protocol

BOT_IP = ip_to_int("198.51.100.77")
C2_IP = ip_to_int("203.0.113.10")
TARGET = ip_to_int("192.0.2.50")
C2_PORT = 1312


class InternetAdapter:
    """Minimal NetworkAdapter over a VirtualInternet, for tests."""

    def __init__(self, internet, bot_ip):
        self.internet = internet
        self.bot_ip = bot_ip

    def tcp_connect(self, dst, port, trace=None):
        return self.internet.tcp_connect(self.bot_ip, dst, port, trace)

    def send_datagram(self, pkt, trace=None):
        self.internet.send_datagram(pkt, trace)

    def dns_lookup(self, name, trace=None):
        response = self.internet.dns_lookup(self.bot_ip, name, trace)
        return response.addresses[0] if response.addresses else None


def build_world(family_name, schedule=None):
    rng = random.Random(7)
    internet = VirtualInternet(random.Random(8))
    internet.add_host(BOT_IP, "sandbox")
    host = internet.add_host(C2_IP, "c2")
    server = C2Server(get_family(family_name), rng, schedule=schedule)
    host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP, service=server))
    config = BotConfig(
        family=family_name, c2_host=int_to_ip(C2_IP), c2_port=C2_PORT,
    )
    bot = Bot(config, BOT_IP, random.Random(9))
    return internet, server, bot, InternetAdapter(internet, BOT_IP)


class TestCheckins:
    @pytest.mark.parametrize("family", ["mirai", "gafgyt", "daddyl33t", "tsunami"])
    def test_bot_checks_in(self, family):
        _, server, bot, adapter = build_world(family)
        session = bot.connect_c2(adapter)
        assert session is not None
        assert BOT_IP in server.checked_in

    def test_p2p_family_has_no_c2_server(self):
        with pytest.raises(ValueError):
            C2Server(get_family("mozi"), random.Random(0))

    def test_mirai_server_acks_handshake(self):
        _, _, bot, adapter = build_world("mirai")
        bot.connect_c2(adapter)
        assert bot.server_bytes.startswith(b"\x00\x00\x00\x01")

    def test_gafgyt_ping_pong(self):
        _, _, bot, adapter = build_world("gafgyt")
        session = bot.connect_c2(adapter)
        bot.poll_c2(session)
        assert b"PONG" in bot.server_bytes


class TestAttackDelivery:
    def attack(self, method="udp"):
        return AttackCommand(method, TARGET, 80, 60)

    @pytest.mark.parametrize(
        "family,method",
        [("mirai", "udp"), ("gafgyt", "udp"), ("daddyl33t", "hydrasyn"),
         ("tsunami", "udp")],
    )
    def test_scheduled_attack_reaches_bot(self, family, method):
        internet, server, bot, adapter = build_world(family)
        server.schedule_attack(internet.clock.now, self.attack(method))
        session = bot.connect_c2(adapter)
        commands = bot.poll_c2(session)
        assert self.attack(method) in commands

    def test_future_attack_not_delivered_early(self):
        internet, server, bot, adapter = build_world("gafgyt")
        server.schedule_attack(internet.clock.now + 3600, self.attack())
        session = bot.connect_c2(adapter)
        assert bot.poll_c2(session) == []
        internet.clock.advance(3601)
        assert self.attack() in bot.poll_c2(session)

    def test_attack_delivered_once_per_bot(self):
        internet, server, bot, adapter = build_world("gafgyt")
        server.schedule_attack(internet.clock.now, self.attack())
        session = bot.connect_c2(adapter)
        first = bot.poll_c2(session)
        second = bot.poll_c2(session)
        assert len(first) == 1
        assert len(second) == 1  # cumulative decode still sees one command
        assert len(server.issued) == 1

    def test_issuance_recorded_with_time(self):
        internet, server, bot, adapter = build_world("gafgyt")
        server.schedule_attack(internet.clock.now, self.attack())
        session = bot.connect_c2(adapter)
        bot.poll_c2(session)
        ((peer, command, when),) = server.issued
        assert peer == BOT_IP
        assert command == self.attack()
        assert when >= internet.clock.now - 10


class TestResponsivenessModel:
    def test_rarely_responds_twice_in_a_row(self):
        """Calibration target: ~91% of successes not repeated 4h later."""
        repeats = 0
        successes = 0
        for seed in range(300):
            model = ResponsivenessModel(seed)
            states = [model.is_open(i * SLOT_SECONDS) for i in range(84)]
            for a, b in zip(states, states[1:]):
                if a:
                    successes += 1
                    if b:
                        repeats += 1
        assert successes > 500
        rate = repeats / successes
        assert 0.04 < rate < 0.15  # paper: 0.09

    def test_stationary_open_fraction(self):
        model = ResponsivenessModel(1)
        states = [model.is_open(i * SLOT_SECONDS) for i in range(5000)]
        fraction = sum(states) / len(states)
        assert 0.15 < fraction < 0.30  # configured pi = 0.22

    def test_deterministic_given_seed(self):
        a = ResponsivenessModel(5)
        b = ResponsivenessModel(5)
        times = [i * SLOT_SECONDS for i in range(50)]
        assert [a.is_open(t) for t in times] == [b.is_open(t) for t in times]

    def test_constant_within_slot(self):
        model = ResponsivenessModel(2)
        base = 10 * SLOT_SECONDS
        assert model.is_open(base) == model.is_open(base + SLOT_SECONDS - 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ResponsivenessModel(0, p_open=0.0)
        with pytest.raises(ValueError):
            ResponsivenessModel(0, p_open=0.99, p_stay_open=0.0)
        with pytest.raises(ValueError):
            ResponsivenessModel(0, p_stay_open=1.5)


class TestDownloader:
    def test_serves_files(self):
        internet = VirtualInternet(random.Random(0))
        internet.add_host(BOT_IP)
        host = internet.add_host(C2_IP)
        downloader = DownloaderHttp({"8UsA.sh": b"#!/bin/sh\necho pwned\n"})
        host.bind(Listener(port=80, protocol=Protocol.TCP, service=downloader))
        session = internet.tcp_connect(BOT_IP, C2_IP, 80)
        session.send(b"GET /8UsA.sh HTTP/1.0\r\n\r\n")
        reply = session.recv()
        assert reply.startswith(b"HTTP/1.0 200 OK")
        assert b"echo pwned" in reply
        assert downloader.requests == ["/8UsA.sh"]


class TestLifespan:
    def test_days_computed(self):
        assert observed_lifespan_days(0.0, 86400.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            observed_lifespan_days(100.0, 50.0)
