"""Property tests for the fine-grained shard plan (DESIGN.md §9).

The distributed runner's correctness rests on two properties of the
sha256 unit partition:

* *stability*: a sample's unit is a pure function of ``(sha256,
  unit_count)`` — no corpus state, no scheduling state — so every
  occurrence of a hash lands in the same unit and dedup stays
  unit-local for **any** unit count;
* *schedule independence*: unit outputs are pure functions of
  ``(seed, scale, config, unit)``, and :meth:`Datasets.merge` is
  origin-driven — so any assignment of units to workers, any steal,
  any re-dispatch (attempt number included), and any merge grouping
  produce the same digest as the serial run.

These are exactly the degrees of freedom the coordinator exercises
(placement, stealing, lost-worker re-queues), checked here without a
socket in the loop so a failure points at the plan, not the transport.
"""

import dataclasses

import pytest

from repro.core.cache import dataset_digest
from repro.core.datasets import Datasets
from repro.core.parallel import execute_shard
from repro.core.pipeline import PipelineConfig
from repro.core.study import run_study
from repro.determinism import shard_of
from repro.dist.plan import TaskSpec, default_unit_count, world_key
from repro.netsim.faults import FAULT_PLANS
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 1337
UNIT_COUNT = 4

PLANS = {"plain": None, "mild": FAULT_PLANS["mild"]}


def _config(plan_name):
    plan = PLANS[plan_name]
    return PipelineConfig() if plan is None else PipelineConfig(faults=plan)


@pytest.fixture(scope="module", params=sorted(PLANS))
def plan_name(request):
    return request.param


@pytest.fixture(scope="module")
def serial(plan_name):
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world,
                                             config=_config(plan_name))
    return datasets


@pytest.fixture(scope="module")
def unit_results(plan_name):
    """The four unit datasets, computed once per plan, in-process."""
    spec = TaskSpec(seed=SEED, scale=SCALE, config=_config(plan_name),
                    shard_count=UNIT_COUNT)
    return [
        execute_shard(SEED, SCALE, spec.config_for(unit), 0, False).datasets
        for unit in range(UNIT_COUNT)
    ]


def _digest_with_probing(unit_datasets, serial):
    """Merge unit outputs the way the runner does: the probing results
    (d_pc2) come from the parent, not the units."""
    merged = Datasets.merge(list(unit_datasets))
    merged.d_pc2 = list(serial.d_pc2)
    return dataset_digest(merged)


# -- partition stability ------------------------------------------------------


def test_partition_covers_and_is_stable_across_unit_counts(serial):
    hashes = [p.sha256 for p in serial.profiles]
    assert hashes
    for count in (1, 2, 3, 5, 8, 13):
        first = [shard_of(sha256, count) for sha256 in hashes]
        again = [shard_of(sha256, count) for sha256 in hashes]
        # pure function of (sha256, count): no hidden state
        assert first == again
        assert all(0 <= unit < count for unit in first)
        # every hash is owned by exactly one unit; nothing lost
        by_unit: dict = {}
        for sha256, unit in zip(hashes, first):
            by_unit.setdefault(unit, []).append(sha256)
        assert sorted(h for block in by_unit.values() for h in block) == \
            sorted(hashes)


def test_world_key_is_stable_and_discriminating():
    key = world_key(SEED, SCALE)
    assert key == world_key(SEED, SCALE)
    assert key != world_key(SEED + 1, SCALE)
    assert key != world_key(SEED, dataclasses.replace(
        SCALE, sample_fraction=0.06))
    spec = TaskSpec(seed=SEED, scale=SCALE, config=PipelineConfig(),
                    shard_count=UNIT_COUNT)
    assert spec.world_key == key


def test_default_unit_count_scales_with_the_fleet():
    assert default_unit_count(1) == 4
    assert default_unit_count(2) == 8
    assert default_unit_count(2, per_worker=3) == 6
    assert default_unit_count(0) == 1       # floor: always one unit


# -- schedule independence ----------------------------------------------------

# worker groupings of the four units: the serial fleet, a balanced
# 2-worker split, a post-steal skewed split (worker 0 lost most of its
# queue), and the fully fanned-out fleet
GROUPINGS = [
    [[0, 1, 2, 3]],
    [[0, 3], [1, 2]],
    [[0], [1, 2, 3]],
    [[0], [1], [2], [3]],
]


@pytest.mark.parametrize("grouping", GROUPINGS,
                         ids=["w1", "w2-balanced", "w2-stolen", "w4"])
def test_any_worker_grouping_merges_to_the_serial_digest(
        grouping, unit_results, serial):
    """Per-worker partial merges, then the merge of merges — the shape
    a coordinator harvest has after any placement/steal schedule."""
    per_worker = [Datasets.merge([unit_results[u] for u in worker_units])
                  for worker_units in grouping]
    merged = Datasets.merge(per_worker)
    merged.d_pc2 = list(serial.d_pc2)
    assert dataset_digest(merged) == dataset_digest(serial)


def test_harvest_order_does_not_matter(unit_results, serial):
    expected = dataset_digest(serial)
    for order in ([3, 1, 0, 2], [2, 3, 0, 1], [1, 0, 3, 2]):
        shuffled = [unit_results[u] for u in order]
        assert _digest_with_probing(shuffled, serial) == expected


def test_redispatch_attempt_does_not_change_the_bytes(plan_name,
                                                      unit_results, serial):
    """A re-queued unit runs with attempt+1 (and a steal twin with the
    original attempt): both must reproduce the first try's bytes."""
    spec = TaskSpec(seed=SEED, scale=SCALE, config=_config(plan_name),
                    shard_count=UNIT_COUNT)
    retried = execute_shard(SEED, SCALE, spec.config_for(2), 3,
                            False).datasets
    assert retried == unit_results[2]
    substituted = list(unit_results)
    substituted[2] = retried
    assert _digest_with_probing(substituted, serial) == \
        dataset_digest(serial)


def test_finer_units_merge_to_the_same_digest(plan_name, serial):
    """unit_count is a free parameter: 7 units == 4 units == serial."""
    spec = TaskSpec(seed=SEED, scale=SCALE, config=_config(plan_name),
                    shard_count=7)
    units = [
        execute_shard(SEED, SCALE, spec.config_for(unit), 0, False).datasets
        for unit in range(7)
    ]
    assert _digest_with_probing(units, serial) == dataset_digest(serial)
