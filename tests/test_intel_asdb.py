"""Tests for the AS database."""

import random

import pytest

from repro.intel.asdb import (
    AsDatabase,
    AsRecord,
    TOP_C2_ASES,
    VICTIM_ASES,
    top10_table,
)
from repro.netsim.addresses import AddressAllocator


@pytest.fixture(scope="module")
def db():
    return AsDatabase(random.Random(1))


class TestSeedData:
    def test_table2_asns_present(self, db):
        for record in TOP_C2_ASES:
            assert db.get(record.asn) is record

    def test_table2_values(self, db):
        colo = db.get(36352)
        assert colo.name == "ColoCrossing" and colo.country == "US"
        assert colo.is_hosting and colo.anti_ddos
        delis = db.get(211252)
        assert delis.anti_ddos is None and not delis.website_info
        apeiron = db.get(139884)
        assert apeiron.anti_ddos is False

    def test_all_top10_are_hosting_providers(self, db):
        assert all(db.get(r.asn).is_hosting for r in TOP_C2_ASES)

    def test_crypto_acceptors_match_section_3_1(self, db):
        crypto = {r.asn for r in TOP_C2_ASES if db.get(r.asn).accepts_crypto}
        assert crypto == {53667, 202306, 44812}  # 30% of the ten

    def test_country_mix_us_ru_nl(self, db):
        countries = [db.get(r.asn).country for r in TOP_C2_ASES]
        majority = sum(1 for c in countries if c in ("US", "RU", "NL"))
        assert majority == 7  # 70% (§3.1)

    def test_database_spans_about_128_ases(self, db):
        assert 110 <= len(db) <= 140  # Appendix A: 128 observed

    def test_victim_ases_have_gaming_specialists(self, db):
        gaming = [r for r in VICTIM_ASES if r.specialization == "gaming"]
        assert len(gaming) >= 3
        assert any(r.name == "Roblox" for r in VICTIM_ASES)


class TestLookup:
    def test_lookup_roundtrip(self, db):
        rng = random.Random(2)
        allocator = AddressAllocator(rng)
        for record in TOP_C2_ASES:
            address = db.allocate_address(record.asn, allocator, rng)
            assert db.lookup(address) is db.get(record.asn)

    def test_lookup_unallocated_space(self, db):
        assert db.lookup(0x08080808) is None  # 8.8.8.8 not in 101.x carve

    def test_prefixes_disjoint(self, db):
        seen = set()
        for record in db.records.values():
            for prefix in db.prefixes_for(record.asn):
                assert prefix.network not in seen
                seen.add(prefix.network)

    def test_unknown_asn_allocation_fails(self, db):
        with pytest.raises(KeyError):
            db.allocator_subnet(99999999, random.Random(0))

    def test_duplicate_asn_rejected(self):
        db = AsDatabase(random.Random(0), tail_size=0)
        with pytest.raises(ValueError):
            db.add(AsRecord(36352, "dup", "US", "hosting"))


class TestTable2Rows:
    def test_rows_shape(self, db):
        rows = top10_table(db)
        assert len(rows) == 10
        assert rows[0]["as_name"] == "ColoCrossing"
        assert rows[0]["anti_ddos"] == "Yes"
        assert {"as_name", "asn", "country", "hosting", "anti_ddos"} <= set(rows[0])

    def test_na_rendering(self, db):
        rows = {row["asn"]: row for row in top10_table(db)}
        assert rows[211252]["anti_ddos"] == "N/A"
        assert rows[139884]["anti_ddos"] == "No"
