"""Tables 5 and 6 — the study's fixed inputs, rendered for completeness.

These are not measurements (Table 5 is the probing port configuration,
Table 6 the malware family descriptions), but the benches render them so
the full set of the paper's tables regenerates from one command.
"""

from conftest import emit

from repro.botnet.families import FAMILIES, family_table
from repro.core.report import render_table
from repro.world.calibration import PROBE_PORTS


def test_table5_probe_ports(benchmark, campaign):
    ports = benchmark(lambda: tuple(campaign.ports))
    emit(render_table(
        ["Ports"],
        [[", ".join(str(p) for p in ports)]],
        "Table 5 — port configuration of the D-PC2 probing",
    ))
    assert ports == PROBE_PORTS
    assert len(ports) == 12
    # and the campaign actually probed them: every discovered C2 sits on one
    assert all(port in ports for _addr, port in campaign.discovered)


def test_table6_family_descriptions(benchmark, datasets):
    rows = benchmark(family_table)
    emit(render_table(
        ["Family", "Description"],
        [[name, description[:70] + "..."] for name, description in rows],
        "Table 6 — malware families",
    ))
    assert len(rows) == 7
    # every family the study labeled appears in Table 6
    labeled = {p.family_label for p in datasets.profiles if p.family_label}
    assert labeled <= set(FAMILIES)
    # the paper's protocol distinctions are encoded
    assert "binary" in dict(rows)["mirai"]
    assert "IRC" in dict(rows)["tsunami"]
    assert "P2P" in dict(rows)["hajime"] or "P2P" in dict(rows)["mozi"]
