"""Figure 6: CDF of distinct binaries per C2 domain."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_cdf


def test_fig6_samples_per_c2_domain(benchmark, datasets):
    points = benchmark(c2_analysis.samples_per_c2_cdf, datasets, True)
    emit(render_cdf(points, "Figure 6 — CDF of #binaries per C2 domain",
                    "#binaries"))
    counts = [r.distinct_samples for r in datasets.d_c2s.values()
              if r.is_dns]
    assert counts, "expected DNS-named C2s at full scale"
    # result qualitatively similar to the IP case (section 3.3): a large
    # single-binary share plus reused domains
    single = sum(1 for c in counts if c == 1) / len(counts)
    assert 0.15 < single < 0.8
    assert max(counts) >= 2
