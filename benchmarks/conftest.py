"""Benchmark fixtures: one full-scale study shared by every bench.

Each benchmark regenerates one table or figure from the paper's
evaluation, prints a paper-vs-measured comparison, and asserts the
paper's qualitative shape (who wins, rough factors, crossovers).  The
timed section is the analysis computation; the study itself is served
from the persistent :class:`~repro.core.cache.StudyCache` (cold runs
populate it with ``workers="auto"``), so repeated bench sessions skip
the multi-second study entirely.  Point ``REPRO_BENCH_CACHE`` somewhere
else to relocate the cache; delete the directory to force a cold run.
"""

import os

import pytest

from repro.core.cache import StudyCache
from repro.core.study import run_study
from repro.world import generate_world

BENCH_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE",
    os.path.join(os.path.dirname(__file__), ".study_cache"),
)


@pytest.fixture(scope="session")
def study():
    """The full-scale measurement study (1447 samples, 14-day probing)."""
    world = generate_world()
    malnet, campaign, datasets = run_study(
        world, workers="auto", cache=StudyCache(BENCH_CACHE_DIR))
    return world, malnet, campaign, datasets


@pytest.fixture(scope="session")
def world(study):
    return study[0]


@pytest.fixture(scope="session")
def campaign(study):
    return study[2]


@pytest.fixture(scope="session")
def datasets(study):
    return study[3]


def emit(text: str) -> None:
    """Print a rendered table/figure under the bench output."""
    print()
    print(text)
