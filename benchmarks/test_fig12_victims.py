"""Figure 12: DDoS victims by country and AS type."""

from conftest import emit

from repro.core import ddos_analysis
from repro.core.report import render_histogram


def test_fig12_victim_profile(benchmark, world, datasets):
    shares = benchmark(ddos_analysis.victim_kind_shares, datasets, world.asdb)
    emit(render_histogram(
        {k: round(v * 100) for k, v in shares.items()},
        "Figure 12 — victims by AS type (%)",
    ))
    profiles = ddos_analysis.victim_profiles(datasets, world.asdb)
    countries = {p.country for p in profiles}
    emit(f"victims: {len(profiles)} targets in {countries}")
    # ISPs and hosting providers absorb most attacks (45% + 36%)
    assert shares.get("isp", 0) + shares.get("hosting", 0) > 0.55
    assert shares.get("isp", 0) > 0.2
    # businesses (Google/Amazon/Roblox class) are a real minority
    assert 0 < shares.get("business", 0) < 0.45
    # targets span many countries
    assert len(countries) >= 5
    # the gaming orientation: a noticeable share of victim ASes
    gaming = ddos_analysis.gaming_share(datasets, world.asdb)
    emit(f"gaming-specialized victim share: paper 18% / measured {gaming:.0%}")
    # 25% of targets hit by two attack types in a session
    double = ddos_analysis.double_attack_share(datasets, world.asdb)
    emit(f"double-attacked targets: paper 25% / measured {double:.0%}")
    assert double > 0.08
