"""Figure 5: CDF of distinct binaries per C2 IP address."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_cdf


def test_fig5_samples_per_c2_ip(benchmark, datasets):
    points = benchmark(c2_analysis.samples_per_c2_cdf, datasets, False)
    emit(render_cdf(points, "Figure 5 — CDF of #binaries per C2 IP",
                    "#binaries"))
    counts = [r.distinct_samples for r in datasets.d_c2s.values()
              if not r.is_dns]
    single = sum(1 for c in counts if c == 1) / len(counts)
    heavy = sum(1 for c in counts if c > 10) / len(counts)
    emit(f"single-binary C2s: paper ~40% / measured {single:.0%}; "
         f">10 binaries: paper ~20% / measured {heavy:.0%}")
    # shape: ~40% of C2 IPs serve one binary, a fat >10 tail exists
    assert 0.25 < single < 0.55
    assert 0.08 < heavy < 0.35
    # consequence: 60% of C2s are contacted by more than one binary, so
    # blocking a C2 found via one binary contains others (section 3.3)
    assert (1 - single) > 0.4
