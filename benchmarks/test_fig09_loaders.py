"""Figure 9: frequency of loader filenames in D-Exploits."""

from conftest import emit

from repro.botnet.exploits import LOADER_WEIGHTS
from repro.core import exploit_analysis
from repro.core.report import render_histogram


def test_fig9_loader_filename_frequency(benchmark, datasets):
    freqs = benchmark(exploit_analysis.loader_frequencies, datasets)
    emit(render_histogram(freqs, "Figure 9 — binaries per loader filename"))
    # the loader names are exactly the paper's seven (authors reuse the
    # same loader across exploits, section 4)
    assert set(freqs) <= set(LOADER_WEIGHTS)
    assert len(freqs) >= 5
    # the ranking follows the paper's: t8UsA2.sh on top, jaws.sh rare
    ranked = sorted(freqs, key=freqs.get, reverse=True)
    assert ranked[0] in ("t8UsA2.sh", "Tsunamix6", "ddns.sh")
    assert freqs.get("jaws.sh", 0) <= freqs[ranked[0]] / 3
