"""Figure 3: CDF of observed lifetime of C2 domains."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_cdf


def test_fig3_c2_domain_lifetime_cdf(benchmark, datasets):
    points = benchmark(c2_analysis.lifetime_cdf, datasets, True)
    emit(render_cdf(points, "Figure 3 — CDF of C2 domain observed lifetime",
                    "days"))
    spans = [r.observed_lifespan_days for r in datasets.d_c2s.values()
             if r.is_dns]
    assert spans, "expected DNS-named C2s in the full-scale study"
    # qualitatively similar to the IP CDF: dominated by short lifespans
    one_day = sum(1 for s in spans if s <= 1) / len(spans)
    assert one_day > 0.4
    # and bounded by the same tail scale (Figure 3's x-axis tops at ~10)
    assert max(spans) <= 45
