"""Micro-benchmarks of the hot substrate paths.

Not paper experiments — these track the costs that bound how far the
study scales: packet codec, pcap I/O, flow aggregation, protocol
profiling, and world generation itself.

Each bench also folds its per-round timings into a
:class:`~repro.obs.MetricsRegistry` histogram attached as
``extra_info`` so BENCH_*.json snapshots carry the latency
*distribution*, not just the mean.
"""

import gc
import io
import json
import os
import pickle
import random
import tracemalloc

from repro.botnet.protocols import mirai
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture, PcapReader, PcapWriter
from repro.netsim.flows import FlowTable
from repro.netsim.packet import TcpFlags, decode_packet, encode_packet, tcp_packet
from repro.obs import MetricsRegistry

A = ip_to_int("198.51.100.1")
B = ip_to_int("203.0.113.1")

#: per-round wall-time buckets, 10µs .. 1s (seconds)
_ROUND_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


def record_round_histogram(benchmark, name: str) -> None:
    """Attach the per-round timing distribution to the benchmark record."""
    try:
        rounds = benchmark.stats.stats.data
    except AttributeError:      # plugin disabled / bench not run
        return
    registry = MetricsRegistry()
    series = registry.histogram(
        "bench_round_seconds", "per-round benchmark wall time",
        labelnames=("bench",), buckets=_ROUND_BUCKETS,
    ).labels(bench=name)
    for value in rounds:
        series.observe(value)
    benchmark.extra_info["round_seconds_histogram"] = series.snapshot()


def _packets(count=1000):
    rng = random.Random(0)
    return [
        tcp_packet(A, B, rng.randrange(1024, 65535), 80,
                   TcpFlags.PSH | TcpFlags.ACK,
                   bytes(rng.randrange(256) for _ in range(64)),
                   seq=rng.randrange(2**32), timestamp=i * 0.001)
        for i in range(count)
    ]


def test_packet_encode_throughput(benchmark):
    packets = _packets(200)
    total = benchmark(lambda: sum(len(encode_packet(p)) for p in packets))
    assert total > 200 * 40
    record_round_histogram(benchmark, "packet_encode")


def test_packet_roundtrip_throughput(benchmark):
    packets = _packets(100)
    encoded = [encode_packet(p) for p in packets]

    def roundtrip():
        return [decode_packet(e) for e in encoded]

    decoded = benchmark(roundtrip)
    assert decoded == packets
    record_round_histogram(benchmark, "packet_roundtrip")


def test_pcap_write_read_throughput(benchmark):
    packets = _packets(500)

    def cycle():
        buf = io.BytesIO()
        PcapWriter(buf).write_all(packets)
        buf.seek(0)
        return sum(1 for _ in PcapReader(buf))

    assert benchmark(cycle) == 500
    record_round_histogram(benchmark, "pcap_write_read")


def test_flow_aggregation_throughput(benchmark):
    capture = Capture(_packets(1000))
    table = benchmark(FlowTable.from_capture, capture)
    assert len(table) >= 1
    record_round_histogram(benchmark, "flow_aggregation")


def test_mirai_profiler_throughput(benchmark):
    command = AttackCommand("udp", B, 80, 60)
    stream = (mirai.KEEPALIVE * 10 + mirai.encode_attack(command)) * 50

    commands = benchmark(mirai.extract_commands, stream)
    assert len(commands) == 50
    record_round_histogram(benchmark, "mirai_profiler")


def test_world_generation_cost(benchmark):
    from repro.world import StudyScale, generate_world

    scale = StudyScale(sample_fraction=0.05, probe_days=2)
    world = benchmark(generate_world, 123, scale)
    assert len(world.truth.all_samples) == scale.total_samples
    record_round_histogram(benchmark, "world_generation")


# -- scan burst: batched vs the un-batched reference ------------------------
#
# The scan path is the sandbox's hottest loop.  The un-batched reference
# below reproduces the pre-optimization behavior exactly — per-call port
# list and armed-exploit rebuilds, one eagerly constructed Packet per
# SYN/PSH — and serves as the frozen baseline the batched path is timed
# against.  Identical RNG draw order means both produce identical hits
# and identical traces.

_BURSTS = 40        # sandbox calls scan_burst once per observe slot
_BURST_SIZE = 75


def _scan_bot(seed):
    from repro.binary.config import BotConfig
    from repro.botnet.bot import Bot
    from repro.botnet.exploits import KEY_TO_INDEX

    config = BotConfig(
        family="gafgyt", c2_host="203.0.113.9", c2_port=666,
        scan_ports=[23],
        exploit_ids=[KEY_TO_INDEX["CVE-2018-10561"],
                     KEY_TO_INDEX["CVE-2015-2051"]],
        loader_name="8UsA.sh", downloader="203.0.113.9:80",
    )
    return Bot(config, A, random.Random(seed))


def _legacy_scan_targets(bot, count):
    from repro.botnet.bot import TELNET_PORTS
    from repro.botnet.exploits import EXPLOIT_INDEX
    from repro.netsim.addresses import is_reserved

    ports = list(bot.config.scan_ports) or list(TELNET_PORTS)
    for index in bot.config.exploit_ids:
        vuln = EXPLOIT_INDEX.get(index)
        if vuln is not None and vuln.port not in ports:
            ports.append(vuln.port)
    targets = []
    while len(targets) < count:
        address = bot.rng.randrange(0x01000000, 0xDF000000)
        if is_reserved(address):
            continue
        targets.append((address, bot.rng.choice(ports)))
    return targets


def _legacy_payload_for_port(bot, port):
    from repro.botnet.bot import TELNET_CREDENTIALS, TELNET_PORTS
    from repro.botnet.exploits import EXPLOIT_INDEX, vulnerability_for_index

    if port in TELNET_PORTS:
        user, password = bot.rng.choice(TELNET_CREDENTIALS)
        return user + b"\r\n" + password + b"\r\n", None
    armed = [
        vulnerability_for_index(index)
        for index in bot.config.exploit_ids
        if index in EXPLOIT_INDEX
    ]
    matching = [vuln for vuln in armed if vuln.port == port]
    if matching:
        vuln = bot.rng.choice(matching)
        downloader = bot.config.downloader or bot.config.c2_host
        loader = bot.config.loader_name or "bot.sh"
        return vuln.build_payload(downloader, loader), vuln
    return b"GET / HTTP/1.0\r\n\r\n", None


def _legacy_scan_burst(bot, adapter, count):
    from repro.botnet.bot import ScanHit

    hits = []
    for address, port in _legacy_scan_targets(bot, count):
        session = adapter.tcp_connect(address, port, None)
        if session is None:
            continue
        payload, vuln = _legacy_payload_for_port(bot, port)
        session.send(payload)
        session.recv()
        session.close()
        hits.append(ScanHit(address, port, payload, vuln))
    return hits


def _eager_handshaker(seed):
    from repro.netsim.addresses import ephemeral_port
    from repro.sandbox.handshaker import ExploitCapture, Handshaker

    class EagerHandshaker(Handshaker):
        """Pre-optimization recording: one Packet built per SYN/PSH."""

        def _record_syn(self, dst, port):
            syn = tcp_packet(self.bot_ip, dst, ephemeral_port(self.rng),
                             port, TcpFlags.SYN)
            self._stamp(syn)
            self.trace.add(syn)

        def _collect(self, target, port, payload):
            data = tcp_packet(self.bot_ip, target,
                              ephemeral_port(self.rng), port,
                              TcpFlags.PSH | TcpFlags.ACK, payload)
            self._stamp(data)
            self.trace.add(data)
            key = (target, port)
            existing = self._latest.get(key)
            if existing is None:
                capture = ExploitCapture(port=port, target=target,
                                         payload=payload)
                self._latest[key] = capture
                self.captures.append(capture)
            else:
                existing.payload = payload

    return EagerHandshaker(A, random.Random(seed), fanout_threshold=20)


def _handshaker(seed):
    from repro.sandbox.handshaker import Handshaker

    return Handshaker(A, random.Random(seed), fanout_threshold=20)


def test_scan_burst_batched_speedup(benchmark):
    import time

    # correctness first: the batched path and the un-batched reference
    # must produce identical hits and byte-identical traces
    bot, handshaker = _scan_bot(7), _handshaker(7)
    hits = [h for _ in range(_BURSTS)
            for h in bot.scan_burst(handshaker, _BURST_SIZE)]
    legacy_bot, legacy_handshaker = _scan_bot(7), _eager_handshaker(7)
    legacy_hits = [h for _ in range(_BURSTS)
                   for h in _legacy_scan_burst(legacy_bot, legacy_handshaker,
                                               _BURST_SIZE)]
    assert hits == legacy_hits
    assert handshaker.captures == legacy_handshaker.captures
    assert list(handshaker.trace) == list(legacy_handshaker.trace)

    def optimized():
        b, h = _scan_bot(7), _handshaker(7)
        for _ in range(_BURSTS):
            b.scan_burst(h, _BURST_SIZE)

    def legacy():
        b, h = _scan_bot(7), _eager_handshaker(7)
        for _ in range(_BURSTS):
            _legacy_scan_burst(b, h, _BURST_SIZE)

    benchmark(optimized)
    record_round_histogram(benchmark, "scan_burst")

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    speedup = best_of(legacy) / best_of(optimized)
    benchmark.extra_info["speedup_vs_unbatched"] = round(speedup, 2)
    assert speedup >= 2.0, (
        f"batched scan path only {speedup:.2f}x faster than the "
        "un-batched reference")


# -- scan/observe allocation bench: columnar vs pre-columnar -----------------
#
# The columnar capture ("never build unless read") changes what one
# sandboxed sample *allocates*: recording lands rows in arrays instead of
# one Packet object per packet, and the shard hop pickles columns instead
# of an object graph.  The pre-columnar reference below reproduces the
# old recording exactly — eager Packet construction per row — and the
# workload is what a shard worker does with a trace: record the scan
# burst, answer the monitor's scalar observes, and pickle the capture
# for the parent.  Numbers are also checked against the committed
# baseline in ``baselines/alloc_scan_observe.json``.

_ALLOC_EVENTS = 5000
_ALLOC_BASELINE = os.path.join(os.path.dirname(__file__), "baselines",
                               "alloc_scan_observe.json")


def _scan_observe_events():
    rng = random.Random(11)
    events = []
    for i in range(_ALLOC_EVENTS):
        payload = rng.randbytes(48) if i % 5 == 0 else b""
        flags = TcpFlags.PSH | TcpFlags.ACK if i % 5 == 0 else TcpFlags.SYN
        events.append((A + (i % 7), rng.randrange(1, 2**32 - 1),
                       rng.randrange(49152, 65536), (23, 80, 666)[i % 3],
                       flags, payload, i * 0.005))
    return events


def _columnar_scan_observe(events):
    cap = Capture(label="scan")
    add = cap.add_tcp
    for src, dst, sport, dport, flags, payload, ts in events:
        add(src, dst, sport, dport, flags, payload, 0, 0, ts)
    cap.destinations()
    cap.total_bytes()
    cap.duration()
    return cap, pickle.loads(pickle.dumps(cap))


def _eager_scan_observe(events):
    """Frozen pre-columnar recording: one Packet object per row."""
    cap = Capture(label="scan")
    add = cap.add
    for src, dst, sport, dport, flags, payload, ts in events:
        add(tcp_packet(src, dst, sport, dport, flags, payload, timestamp=ts))
    cap.destinations()
    cap.total_bytes()
    cap.duration()
    return cap, pickle.loads(pickle.dumps(cap))


def _live_blocks(fn, *args):
    """Allocated blocks still live after ``fn`` (tracemalloc census)."""
    gc.collect()
    tracemalloc.start()
    keep = fn(*args)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    del keep
    return sum(stat.count for stat in snapshot.statistics("filename"))


def test_scan_observe_allocations_vs_pre_columnar(benchmark):
    import time

    events = _scan_observe_events()
    # correctness first: both recorders must yield identical packets
    columnar_cap, columnar_restored = _columnar_scan_observe(events)
    eager_cap, _ = _eager_scan_observe(events)
    assert columnar_cap.packets == eager_cap.packets
    assert columnar_restored.packets == eager_cap.packets
    assert [p.timestamp for p in columnar_cap.packets] == \
        [p.timestamp for p in eager_cap.packets]

    blocks_now = _live_blocks(_columnar_scan_observe, events)
    blocks_ref = _live_blocks(_eager_scan_observe, events)

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(events)
            best = min(best, time.perf_counter() - start)
        return best

    benchmark(lambda: _columnar_scan_observe(events))
    record_round_histogram(benchmark, "scan_observe_alloc")
    speedup = best_of(_eager_scan_observe) / best_of(_columnar_scan_observe)
    alloc_ratio = blocks_ref / blocks_now

    benchmark.extra_info["allocation_blocks"] = blocks_now
    benchmark.extra_info["allocation_blocks_pre_columnar"] = blocks_ref
    benchmark.extra_info["allocation_ratio"] = round(alloc_ratio, 1)
    benchmark.extra_info["speedup_vs_pre_columnar"] = round(speedup, 2)

    assert alloc_ratio >= 3.0, (
        f"columnar path allocates only {alloc_ratio:.1f}x fewer blocks "
        "than the pre-columnar reference (need >= 3x)")
    assert speedup >= 2.0, (
        f"columnar scan/observe loop only {speedup:.2f}x faster than "
        "the pre-columnar reference (need >= 2x)")

    # the committed baseline pins the pre-columnar cost so a regression
    # that slows *both* paths equally still trips the absolute bound
    with open(_ALLOC_BASELINE, encoding="utf-8") as fh:
        baseline = json.load(fh)
    committed = baseline["pre_columnar"]["allocation_blocks"]
    assert blocks_now * 3 <= committed, (
        f"live allocation census {blocks_now} is within 3x of the "
        f"committed pre-columnar baseline {committed}")
