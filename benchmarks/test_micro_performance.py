"""Micro-benchmarks of the hot substrate paths.

Not paper experiments — these track the costs that bound how far the
study scales: packet codec, pcap I/O, flow aggregation, protocol
profiling, and world generation itself.

Each bench also folds its per-round timings into a
:class:`~repro.obs.MetricsRegistry` histogram attached as
``extra_info`` so BENCH_*.json snapshots carry the latency
*distribution*, not just the mean.
"""

import io
import random

from repro.botnet.protocols import mirai
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture, PcapReader, PcapWriter
from repro.netsim.flows import FlowTable
from repro.netsim.packet import TcpFlags, decode_packet, encode_packet, tcp_packet
from repro.obs import MetricsRegistry

A = ip_to_int("198.51.100.1")
B = ip_to_int("203.0.113.1")

#: per-round wall-time buckets, 10µs .. 1s (seconds)
_ROUND_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


def record_round_histogram(benchmark, name: str) -> None:
    """Attach the per-round timing distribution to the benchmark record."""
    try:
        rounds = benchmark.stats.stats.data
    except AttributeError:      # plugin disabled / bench not run
        return
    registry = MetricsRegistry()
    series = registry.histogram(
        "bench_round_seconds", "per-round benchmark wall time",
        labelnames=("bench",), buckets=_ROUND_BUCKETS,
    ).labels(bench=name)
    for value in rounds:
        series.observe(value)
    benchmark.extra_info["round_seconds_histogram"] = series.snapshot()


def _packets(count=1000):
    rng = random.Random(0)
    return [
        tcp_packet(A, B, rng.randrange(1024, 65535), 80,
                   TcpFlags.PSH | TcpFlags.ACK,
                   bytes(rng.randrange(256) for _ in range(64)),
                   seq=rng.randrange(2**32), timestamp=i * 0.001)
        for i, count_ in enumerate(range(count))
    ]


def test_packet_encode_throughput(benchmark):
    packets = _packets(200)
    total = benchmark(lambda: sum(len(encode_packet(p)) for p in packets))
    assert total > 200 * 40
    record_round_histogram(benchmark, "packet_encode")


def test_packet_roundtrip_throughput(benchmark):
    packets = _packets(100)
    encoded = [encode_packet(p) for p in packets]

    def roundtrip():
        return [decode_packet(e) for e in encoded]

    decoded = benchmark(roundtrip)
    assert decoded == packets
    record_round_histogram(benchmark, "packet_roundtrip")


def test_pcap_write_read_throughput(benchmark):
    packets = _packets(500)

    def cycle():
        buf = io.BytesIO()
        PcapWriter(buf).write_all(packets)
        buf.seek(0)
        return sum(1 for _ in PcapReader(buf))

    assert benchmark(cycle) == 500
    record_round_histogram(benchmark, "pcap_write_read")


def test_flow_aggregation_throughput(benchmark):
    capture = Capture(_packets(1000))
    table = benchmark(FlowTable.from_capture, capture)
    assert len(table) >= 1
    record_round_histogram(benchmark, "flow_aggregation")


def test_mirai_profiler_throughput(benchmark):
    command = AttackCommand("udp", B, 80, 60)
    stream = (mirai.KEEPALIVE * 10 + mirai.encode_attack(command)) * 50

    commands = benchmark(mirai.extract_commands, stream)
    assert len(commands) == 50
    record_round_histogram(benchmark, "mirai_profiler")


def test_world_generation_cost(benchmark):
    from repro.world import StudyScale, generate_world

    scale = StudyScale(sample_fraction=0.05, probe_days=2)
    world = benchmark(generate_world, 123, scale)
    assert len(world.truth.all_samples) == scale.total_samples
    record_round_histogram(benchmark, "world_generation")
