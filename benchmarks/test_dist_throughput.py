"""Macro benchmark: socket transport vs the local pool.

Runs the same sharded study through both transports — a local
``multiprocessing.Pool`` and two real ``repro worker`` subprocess
daemons behind the TCP coordinator — and lands both wall clocks plus
their ratio in ``extra_info``.  The hard assertions are the ones that
must never regress:

* byte-identity — the socket run's datasets equal the local run's
  (which :mod:`tests.test_parallel` already pins to the serial run);
* the committed non-regression guard — the socket study must stay
  within 2x :data:`DIST_BASELINE_SECONDS`.  The guard number includes
  daemon startup and two cold world generations; it exists to catch
  order-of-magnitude transport regressions (per-unit reconnects, lost
  heartbeats, frame churn), not scheduler jitter.

The socket-vs-local ratio is reported, not asserted: on a loaded
single-core runner the coordinator's framing overhead can make the
socket path slower even though the workers do identical work.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.study import run_study
from repro.netsim.faults import FAULT_PLANS
from repro.world import XL_SCALE, StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.3, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 20220322
UNIT_COUNT = 8

#: Committed baseline: smoke-ish (0.3 fraction) socket-transport study
#: wall seconds with 2 subprocess workers, daemon startup included (a
#: dev box does it in ~3 s).  The guard fails at >2x this number.
DIST_BASELINE_SECONDS = 12.0

#: Same deal at XL scale under mild faults (~10x the packet volume; a
#: dev box runs it in ~8 s).
DIST_XL_BASELINE_SECONDS = 30.0

_ANNOUNCE = re.compile(r"listening on ([\d.]+):(\d+)")


class _Fleet:
    """N ``repro worker`` daemons as real subprocesses."""

    def __init__(self, count: int):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        self.procs = []
        self.peers = []
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--port", "0"],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True, env=env)
            self.procs.append(proc)
            match = _ANNOUNCE.search(proc.stdout.readline())
            assert match, "worker did not announce its address"
            self.peers.append(f"{match.group(1)}:{match.group(2)}")

    def stop(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)


@pytest.fixture
def fleet():
    fleet = _Fleet(2)
    yield fleet
    fleet.stop()


def _timed_study(scale, config=None, **kwargs):
    world = generate_world(seed=SEED, scale=scale)
    start = time.perf_counter()
    _malnet, _campaign, datasets = run_study(world, config=config, **kwargs)
    return time.perf_counter() - start, datasets


def test_dist_throughput_socket_vs_local(benchmark, fleet):
    local_elapsed, local_datasets = _timed_study(
        SCALE, workers=2, unit_count=UNIT_COUNT)

    def socket_run():
        return _timed_study(SCALE, transport="socket", peers=fleet.peers,
                            unit_count=UNIT_COUNT)

    elapsed, datasets = benchmark.pedantic(socket_run, rounds=1,
                                           iterations=1)
    assert not datasets.failed_shards
    assert datasets == local_datasets
    samples = len(datasets.profiles)
    benchmark.extra_info["transport"] = "socket"
    benchmark.extra_info["workers"] = 2
    benchmark.extra_info["units"] = UNIT_COUNT
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)
    benchmark.extra_info["local_pool_seconds"] = round(local_elapsed, 3)
    benchmark.extra_info["socket_seconds"] = round(elapsed, 3)
    benchmark.extra_info["socket_vs_local"] = \
        round(elapsed / local_elapsed, 2)
    assert elapsed <= 2 * DIST_BASELINE_SECONDS, (
        f"socket-transport study took {elapsed:.2f}s — more than 2x the "
        f"committed {DIST_BASELINE_SECONDS}s baseline")


def test_dist_warm_worker_speedup(benchmark, fleet):
    """A second study against the same daemons reuses their cached
    worlds — the case cache-aware placement exists to win.  The speedup
    is reported for the trendline, not asserted (on a loaded runner the
    signal drowns in scheduler noise at smoke scale)."""
    cold_elapsed, cold_datasets = _timed_study(
        SCALE, transport="socket", peers=fleet.peers, unit_count=UNIT_COUNT)

    def warm_run():
        return _timed_study(SCALE, transport="socket", peers=fleet.peers,
                            unit_count=UNIT_COUNT)

    warm_elapsed, warm_datasets = benchmark.pedantic(warm_run, rounds=1,
                                                     iterations=1)
    assert warm_datasets == cold_datasets
    benchmark.extra_info["cold_seconds"] = round(cold_elapsed, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_elapsed, 3)
    benchmark.extra_info["warm_speedup"] = \
        round(cold_elapsed / warm_elapsed, 2)


@pytest.mark.skipif(not os.environ.get("REPRO_XL"),
                    reason="XL stress bench; set REPRO_XL=1")
def test_xl_dist_throughput_guard(benchmark, fleet):
    """XL scale under mild faults over the socket transport."""
    config = PipelineConfig(faults=FAULT_PLANS["mild"])
    local_elapsed, local_datasets = _timed_study(
        XL_SCALE, config=config, workers=2, unit_count=UNIT_COUNT)

    def socket_run():
        return _timed_study(XL_SCALE, config=config, transport="socket",
                            peers=fleet.peers, unit_count=UNIT_COUNT)

    elapsed, datasets = benchmark.pedantic(socket_run, rounds=1,
                                           iterations=1)
    assert not datasets.failed_shards
    assert datasets == local_datasets
    samples = len(datasets.profiles)
    benchmark.extra_info["scale"] = "xl"
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)
    benchmark.extra_info["local_pool_seconds"] = round(local_elapsed, 3)
    benchmark.extra_info["socket_vs_local"] = \
        round(elapsed / local_elapsed, 2)
    assert elapsed <= 2 * DIST_XL_BASELINE_SECONDS, (
        f"XL socket-transport study took {elapsed:.2f}s — more than 2x "
        f"the committed {DIST_XL_BASELINE_SECONDS}s baseline")
