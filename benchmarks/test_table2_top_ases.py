"""Table 2: the top-10 autonomous systems hosting C2 servers."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_table
from repro.intel.asdb import TOP_C2_ASES

PAPER_TOP10 = {record.asn for record in TOP_C2_ASES}


def test_table2_top_hosting_ases(benchmark, world, datasets):
    rows = benchmark(c2_analysis.table2_rows, datasets, world.asdb)
    emit(render_table(
        ["AS Name", "ASN", "Country", "Hosting", "Anti DDoS?", "#C2s"],
        [[r["as_name"], r["asn"], r["country"], r["hosting"],
          r["anti_ddos"], r["c2_count"]] for r in rows],
        title="Table 2 — top 10 ASes hosting C2 IPs (measured)",
    ))
    measured = {row["asn"] for row in rows}
    # at least 8 of the paper's ten ASes appear in our measured top ten
    assert len(measured & PAPER_TOP10) >= 8
    # all are hosting providers (paper: every one offers VPS/dedicated)
    assert sum(1 for r in rows if r["hosting"] == "Yes") >= 9
    # 70% are in USA, Russia or the Netherlands (section 3.1)
    majority = sum(1 for r in rows if r["country"] in ("US", "RU", "NL"))
    assert majority >= 5

    share = c2_analysis.top10_share(datasets, world.asdb)
    emit(f"top-10 AS share of all C2s: paper 69.7% / measured {share:.1%}")
    assert 0.55 < share < 0.85
