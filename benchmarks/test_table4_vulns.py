"""Table 4: the exploited vulnerabilities and their sample counts."""

from conftest import emit

from repro.botnet.exploits import POPULARITY_WEIGHTS
from repro.core import exploit_analysis
from repro.core.report import render_table


def test_table4_vulnerabilities(benchmark, datasets):
    rows = benchmark(exploit_analysis.table4, datasets)
    emit(render_table(
        ["ID", "Vulnerability", "Exploit ID", "Published", "Device",
         "paper #", "measured #"],
        [[r.vulnerability.vuln_id, r.vulnerability.key,
          r.vulnerability.exploit_id or "N/A", r.vulnerability.published,
          r.vulnerability.target_device[:28],
          POPULARITY_WEIGHTS[r.vulnerability.key], r.sample_count]
         for r in rows],
        title="Table 4 — exploited vulnerabilities",
    ))
    # near-complete coverage of the 12 vulnerability slots
    assert len(exploit_analysis.observed_vulnerability_ids(datasets)) >= 10
    # popularity ranking: the paper's top four dominate here too
    top4 = set(exploit_analysis.top4_vulnerabilities(datasets))
    assert len(top4 & {"CVE-2018-10561", "CVE-2018-10562", "CVE-2015-2051",
                       "MVPOWER-DVR-RCE"}) >= 3
    # age profile: most exploited vulnerabilities are years old; the
    # newest (CVE-2021-45382) is months old
    total_ids = len(exploit_analysis.observed_vulnerability_ids(datasets))
    old = exploit_analysis.old_vulnerability_count(datasets, years=2.5)
    emit(f"vulnerability ids observed: {total_ids}; >=2.5y old: {old}; "
         f"newest: {exploit_analysis.newest_vulnerability_age_months(datasets):.0f} months")
    assert old >= total_ids - 4
    newest = exploit_analysis.newest_vulnerability_age_months(datasets)
    assert newest < 24
