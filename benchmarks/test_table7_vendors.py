"""Table 7: per-vendor C2 detections over a 1000-IP reference set."""

from conftest import emit

from repro.core import ti_analysis
from repro.core.report import render_table
from repro.intel.vendors import TABLE7_VENDORS


def test_table7_vendor_detections(benchmark, world, datasets):
    rows = benchmark(ti_analysis.table7, datasets, world.vt)
    paper = dict(TABLE7_VENDORS)
    emit(render_table(
        ["vendor", "paper /1000", "measured /1000"],
        [[name, paper.get(name, "-"), count] for name, count in rows[:20]],
        title="Table 7 — top vendors flagging C2 IPs",
    ))
    assert rows
    # the strongest feeds flag the large majority of the reference set
    assert rows[0][1] > 600
    # Table 7's real vendor names fill the top of the measured ranking
    top_names = {name for name, _count in rows[:12]}
    assert len(top_names & set(paper)) >= 8
    # only ~44 of 89 vendors ever flag anything
    active = ti_analysis.active_vendor_count(datasets, world.vt)
    emit(f"vendors ever flagging a C2: paper 44 / measured {active}")
    assert 25 <= active <= 44
