"""Figure 8: per-day per-vulnerability exploiting-binary counts."""

from conftest import emit

from repro.core import exploit_analysis
from repro.world.calibration import ACTIVE_WEEKS

DAYS = ACTIVE_WEEKS * 7 + 60


def test_fig8_per_day_vulnerability_usage(benchmark, datasets):
    series = benchmark(exploit_analysis.per_day_usage, datasets, DAYS)
    emit("Figure 8 — per-vulnerability daily usage (totals and peaks):")
    for key, row in sorted(series.items(),
                           key=lambda kv: -sum(kv[1]))[:12]:
        active_days = sum(1 for v in row if v)
        emit(f"  {key:<22} total={sum(row):>4}  active days={active_days:>3} "
             f" peak/day={max(row)}")
    # the panels sum to D-Exploits
    assert sum(sum(row) for row in series.values()) == len(datasets.d_exploits)
    # four vulnerabilities are consistently and heavily used...
    totals = sorted((sum(row) for row in series.values()), reverse=True)
    assert totals[3] > 3 * (totals[8] if len(totals) > 8 else 1)
    # ...and they are used across many days, not in one burst
    top = sorted(series.values(), key=lambda row: -sum(row))[:4]
    for row in top:
        assert sum(1 for v in row if v) >= 10
