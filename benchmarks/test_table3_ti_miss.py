"""Table 3: threat-intelligence miss rates, same-day vs re-query."""

from conftest import emit

from repro.core import ti_analysis
from repro.core.report import render_table

PAPER = {
    "All": (0.153, 0.033),
    "IP-based": (0.133, 0.015),
    "DNS-based": (0.576, 0.350),
}


def test_table3_unreported_c2s(benchmark, datasets):
    rates = benchmark(ti_analysis.table3, datasets)
    emit(render_table(
        ["Type", "paper same-day", "measured same-day",
         "paper May-7", "measured May-7", "n"],
        [[name, f"{PAPER[name][0]:.1%}", f"{rates[name].same_day:.1%}",
          f"{PAPER[name][1]:.1%}", f"{rates[name].recheck:.1%}",
          rates[name].count] for name in PAPER],
        title="Table 3 — C2s unknown to threat intelligence feeds",
    ))
    # headline: ~15% of verified C2s are unknown on discovery day
    assert 0.08 < rates["All"].same_day < 0.30
    # the re-query months later recovers most of the misses (timeliness!)
    assert rates["All"].recheck < rates["All"].same_day / 2
    # DNS-based C2s are missed far more often than IP-based ones
    assert rates["DNS-based"].same_day > 2 * rates["IP-based"].same_day
    assert rates["IP-based"].recheck < 0.06
