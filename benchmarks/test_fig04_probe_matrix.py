"""Figure 4: C2 elusiveness — the probe-response matrix of D-PC2."""

from conftest import emit

from repro.core.report import render_probe_matrix


def test_fig4_probe_response_matrix(benchmark, campaign):
    matrix = benchmark(campaign.response_matrix)
    emit(render_probe_matrix(
        matrix, "Figure 4 — responses of the 7 probed C2s "
                "(6 probes/day for two weeks)"))
    assert len(matrix) == 7
    # servers are elusive: nobody answers all six probes of any day
    assert not campaign.any_full_day_response()
    # headline: ~91% of successful probes are NOT followed by a success
    # four hours later
    rate = campaign.repeat_response_rate()
    emit(f"repeat-response rate: paper ~9% / measured {rate:.0%}")
    assert rate < 0.25
    # every server is reachable at least sometimes (they were discovered)
    for series in matrix.values():
        assert any(series)
        assert not all(series)
