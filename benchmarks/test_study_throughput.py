"""Macro benchmark: sharded study runner throughput.

Measures end-to-end ``run_study`` throughput serial vs parallel and the
pipeline's shard scalability.  Two speedup numbers land in
``extra_info``:

* ``speedup_vs_serial`` — wall-clock, pool included.  Only meaningful on
  multi-core machines; a single-core container shows pool overhead.
* ``critical_path_speedup`` — serial pipeline time over the slowest
  4-way shard's time, with every shard run in-process.  This is the
  machine-independent measure of how well the sha256 partition divides
  the work (the wall-clock speedup an unloaded 4-core box approaches),
  and is asserted >= 1.5.
"""

import os
import time

from repro.core.pipeline import MalNet, PipelineConfig
from repro.core.study import run_study
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.3, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 20220322


def _timed_study(workers=None):
    world = generate_world(seed=SEED, scale=SCALE)
    start = time.perf_counter()
    _malnet, _campaign, datasets = run_study(world, workers=workers)
    return time.perf_counter() - start, datasets


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_study_throughput_serial(benchmark):
    elapsed, datasets = benchmark.pedantic(_timed_study, rounds=1,
                                           iterations=1)
    samples = len(datasets.profiles)
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)


def test_study_throughput_two_workers(benchmark):
    serial_elapsed, serial_datasets = _timed_study()
    elapsed, datasets = benchmark.pedantic(_timed_study, args=(2,),
                                           rounds=1, iterations=1)
    # the merged parallel output must be the serial output, bit for bit
    assert datasets == serial_datasets
    samples = len(datasets.profiles)
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)
    benchmark.extra_info["speedup_vs_serial"] = \
        round(serial_elapsed / elapsed, 2)
    benchmark.extra_info["cpus"] = _cpus()


def test_shard_critical_path_speedup(benchmark):
    """The 4-way partition must cut the slowest shard's work >= 1.5x."""
    world = generate_world(seed=SEED, scale=SCALE)
    start = time.perf_counter()
    MalNet(world).run()
    serial_elapsed = time.perf_counter() - start

    def shard_times() -> list[float]:
        times = []
        for index in range(4):
            shard_world = generate_world(seed=SEED, scale=SCALE)
            malnet = MalNet(shard_world, PipelineConfig(
                shard_index=index, shard_count=4))
            start = time.perf_counter()
            malnet.run()
            times.append(time.perf_counter() - start)
        return times

    times = benchmark.pedantic(shard_times, rounds=1, iterations=1)
    speedup = serial_elapsed / max(times)
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 3)
    benchmark.extra_info["shard_seconds"] = [round(t, 3) for t in times]
    benchmark.extra_info["critical_path_speedup"] = round(speedup, 2)
    assert speedup >= 1.5, (
        f"4-way sharding only cut the critical path {speedup:.2f}x "
        f"(shard times: {times})")
