"""Macro benchmark: sharded study runner throughput.

Measures end-to-end ``run_study`` throughput serial vs parallel and the
pipeline's shard scalability.  Two speedup numbers land in
``extra_info``:

* ``speedup_vs_serial`` — wall-clock, pool included.  Only meaningful on
  multi-core machines; a single-core container shows pool overhead.
* ``critical_path_speedup`` — serial pipeline time over the slowest
  4-way shard's time, with every shard run in-process.  This is the
  machine-independent measure of how well the sha256 partition divides
  the work (the wall-clock speedup an unloaded 4-core box approaches),
  and is asserted >= 1.5.
"""

import os
import time

import pytest

from repro.core.cache import StudyCache
from repro.core.pipeline import MalNet, PipelineConfig
from repro.core.study import run_study
from repro.netsim.faults import FAULT_PLANS
from repro.world import XL_SCALE, StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.3, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 20220322

SMOKE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)

#: Committed baseline: serial smoke-scale ``run_study`` wall seconds,
#: measured generously above what a loaded CI runner needs (a dev box
#: does it in ~0.2 s).  The guard fails at >2x this number — it exists
#: to catch order-of-magnitude hot-path regressions, not jitter.
SMOKE_BASELINE_SECONDS = 1.5

#: Same deal for the XL scale (~10x the smoke corpus; a dev box runs the
#: serial study in ~2 s on the columnar core).
XL_BASELINE_SECONDS = 10.0


def _timed_study(workers=None):
    world = generate_world(seed=SEED, scale=SCALE)
    start = time.perf_counter()
    _malnet, _campaign, datasets = run_study(world, workers=workers)
    return time.perf_counter() - start, datasets


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_study_throughput_serial(benchmark):
    elapsed, datasets = benchmark.pedantic(_timed_study, rounds=1,
                                           iterations=1)
    samples = len(datasets.profiles)
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)


def test_study_throughput_two_workers(benchmark):
    serial_elapsed, serial_datasets = _timed_study()
    elapsed, datasets = benchmark.pedantic(_timed_study, args=(2,),
                                           rounds=1, iterations=1)
    # the merged parallel output must be the serial output, bit for bit
    assert datasets == serial_datasets
    samples = len(datasets.profiles)
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)
    benchmark.extra_info["speedup_vs_serial"] = \
        round(serial_elapsed / elapsed, 2)
    benchmark.extra_info["cpus"] = _cpus()


def test_shard_critical_path_speedup(benchmark):
    """The 4-way partition must cut the slowest shard's work >= 1.5x."""
    world = generate_world(seed=SEED, scale=SCALE)
    start = time.perf_counter()
    MalNet(world).run()
    serial_elapsed = time.perf_counter() - start

    def shard_times() -> list[float]:
        times = []
        for index in range(4):
            shard_world = generate_world(seed=SEED, scale=SCALE)
            malnet = MalNet(shard_world, PipelineConfig(
                shard_index=index, shard_count=4))
            start = time.perf_counter()
            malnet.run()
            times.append(time.perf_counter() - start)
        return times

    times = benchmark.pedantic(shard_times, rounds=1, iterations=1)
    speedup = serial_elapsed / max(times)
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 3)
    benchmark.extra_info["shard_seconds"] = [round(t, 3) for t in times]
    benchmark.extra_info["critical_path_speedup"] = round(speedup, 2)
    assert speedup >= 1.5, (
        f"4-way sharding only cut the critical path {speedup:.2f}x "
        f"(shard times: {times})")


def test_study_cache_warm_speedup(benchmark, tmp_path):
    """A warm cache hit must beat recomputing the study >= 10x."""
    cache = StudyCache(str(tmp_path / "study-cache"))

    world = generate_world(seed=SEED, scale=SCALE)
    start = time.perf_counter()
    _malnet, _campaign, cold_datasets = run_study(world, cache=cache)
    cold_elapsed = time.perf_counter() - start

    def warm():
        warm_world = generate_world(seed=SEED, scale=SCALE)
        start = time.perf_counter()
        _m, _c, datasets = run_study(warm_world, cache=cache)
        return time.perf_counter() - start, datasets

    warm_elapsed, warm_datasets = benchmark.pedantic(warm, rounds=1,
                                                     iterations=1)
    assert warm_datasets == cold_datasets
    assert cache.hits == 1
    speedup = cold_elapsed / warm_elapsed
    benchmark.extra_info["cold_seconds"] = round(cold_elapsed, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_elapsed, 4)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    assert speedup >= 10.0, (
        f"warm cache only {speedup:.1f}x faster than the cold run")


def test_serial_smoke_throughput_guard():
    """Cheap regression tripwire on the serial hot path.

    Runs everywhere (no benchmark plugin needed): the smoke-scale serial
    study must stay within 2x the committed baseline.
    """
    world = generate_world(seed=SEED, scale=SMOKE)
    start = time.perf_counter()
    run_study(world)
    elapsed = time.perf_counter() - start
    assert elapsed <= 2 * SMOKE_BASELINE_SECONDS, (
        f"serial smoke study took {elapsed:.2f}s — more than 2x the "
        f"committed {SMOKE_BASELINE_SECONDS}s baseline")


@pytest.mark.skipif(not os.environ.get("REPRO_XL"),
                    reason="XL stress bench; set REPRO_XL=1")
def test_xl_study_throughput_guard(benchmark):
    """XL-scale study under mild faults, 2 workers, with a time guard.

    This is the columnar core's stress setting: ~10x the smoke packet
    volume.  The serial run feeds the equality check; the benchmarked
    2-worker run must stay within 2x the committed XL baseline, and both
    throughput numbers land in ``BENCH_xl_*.json`` for the obs trendline.
    """
    def timed_xl(workers=None):
        world = generate_world(seed=SEED, scale=XL_SCALE)
        config = PipelineConfig(faults=FAULT_PLANS["mild"])
        start = time.perf_counter()
        _m, _c, datasets = run_study(world, config=config, workers=workers)
        return time.perf_counter() - start, datasets

    serial_elapsed, serial_datasets = timed_xl()
    elapsed, datasets = benchmark.pedantic(timed_xl, args=(2,),
                                           rounds=1, iterations=1)
    assert datasets == serial_datasets
    samples = len(datasets.profiles)
    benchmark.extra_info["scale"] = "xl"
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 3)
    benchmark.extra_info["samples_per_second"] = round(samples / elapsed, 2)
    benchmark.extra_info["cpus"] = _cpus()
    assert serial_elapsed <= 2 * XL_BASELINE_SECONDS, (
        f"serial XL study took {serial_elapsed:.2f}s — more than 2x the "
        f"committed {XL_BASELINE_SECONDS}s baseline")
