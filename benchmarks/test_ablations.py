"""Ablations of MalNet's design choices.

Each test varies one knob the paper fixes and shows why the paper's value
is the right one: the handshaker's 20-IP fan-out threshold, the 4-hour
probing cadence, threat-intel feed aggregation, and sandbox activation
capability.
"""

import random

import pytest
from conftest import emit

from repro.core.probing import ProbingCampaign
from repro.core.report import render_table
from repro.core.study import select_probe_binaries
from repro.sandbox.handshaker import Handshaker
from repro.sandbox.qemu import MipsEmulator
from repro.sandbox.sandbox import CncHunterSandbox, SANDBOX_IP
from repro.world import StudyScale, generate_world


# -- ablation 1: handshaker fan-out threshold (paper: 20, section 2.4) ------


def _exploit_yield(world, threshold: int, budget: int = 260) -> int:
    """Distinct exploits the handshaker collects at one threshold."""
    emulator = MipsEmulator(random.Random(0), activation_rate=1.0)
    captured = 0
    armed = [s for s in world.truth.all_samples
             if s.sample.config.exploit_ids][:25]
    for planned in armed:
        process = emulator.run(planned.sample.data, SANDBOX_IP)
        handshaker = Handshaker(SANDBOX_IP, random.Random(1),
                                fanout_threshold=threshold)
        process.bot.scan_burst(handshaker, budget)
        captured += len(handshaker.captures)
    return captured


def test_ablation_handshaker_threshold(benchmark, world):
    yields = {
        threshold: _exploit_yield(world, threshold)
        for threshold in (5, 20, 120, 100000)
    }
    benchmark(lambda: _exploit_yield(world, 20, budget=60))
    emit(render_table(
        ["fan-out threshold", "exploit payloads captured"],
        [[t, y] for t, y in yields.items()],
        "Ablation — handshaker redirection threshold (paper uses 20)",
    ))
    # too-high thresholds never redirect, losing the exploits entirely
    assert yields[100000] == 0
    assert yields[20] > 5 * max(1, yields[120])
    # the paper's 20 gives nearly everything a hair-trigger gives
    assert yields[20] > 0.7 * yields[5]


# -- ablation 2: probing cadence (paper: every 4 hours, section 2.3b) -------


def _probing_engagements(world, interval_hours: int):
    sandbox = CncHunterSandbox(
        random.Random(4), world.internet,
        emulator=MipsEmulator(random.Random(5), activation_rate=1.0),
    )
    campaign = ProbingCampaign(
        internet=world.internet, sandbox=sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=select_probe_binaries(world),
        start=world.probe_start, days=14,
        interval_hours=interval_hours,
    )
    campaign.run()
    engaged = sum(1 for o in campaign.observations if o.engaged)
    return len(campaign.discovered), engaged


def test_ablation_probe_frequency(benchmark, world):
    results = {}
    for hours in (4, 12, 24):
        results[hours] = _probing_engagements(world, hours)
    benchmark(lambda: _probing_engagements(world, 24))
    emit(render_table(
        ["probe interval (h)", "C2s discovered", "engagements"],
        [[h, d, e] for h, (d, e) in results.items()],
        "Ablation — probing cadence (paper probes every 4 hours)",
    ))
    # elusive servers demand persistence: a lazier prober sees fewer
    # engagements and risks missing servers entirely (section 3.2's
    # "probing should be persistent and probe frequently")
    assert results[4][1] > results[12][1] > results[24][1]
    assert results[4][0] >= results[24][0]


# -- ablation 3: TI feed aggregation (section 3.3) ----------------------------


def test_ablation_ti_aggregation(benchmark, world, datasets):
    vt = world.vt

    def miss_rate(top_n: int) -> float:
        vendor_names = [v.name for v in vt.vendors.vendors[:top_n]]
        allowed = set(vendor_names)
        verified = [r for r in datasets.d_c2s.values() if r.verified]
        missed = 0
        for record in verified:
            intel = vt.get_intel(record.endpoint)
            flaggers = set(vt.vendors.eventual_flaggers(intel)) if intel else set()
            if not flaggers & allowed:
                missed += 1
        return missed / len(verified)

    rates = {n: miss_rate(n) for n in (1, 3, 10, 44)}
    benchmark(miss_rate, 1)
    emit(render_table(
        ["feeds aggregated", "eventual miss rate"],
        [[n, f"{r:.1%}"] for n, r in rates.items()],
        "Ablation — blacklist built from N vendor feeds "
        "(the paper: aggregate, or miss C2s)",
    ))
    # a single feed misses a sizable share that full aggregation recovers
    assert rates[1] > rates[44] + 0.05
    assert rates[1] >= rates[3] >= rates[10] >= rates[44]


# -- ablation 4: sandbox activation capability (sections 3.3, 6f) -------------


def test_ablation_activation_rate(benchmark):
    """The vendors' stated obstacle — 'lack of infrastructure to execute
    IoT malware binaries' — quantified: C2 discovery scales with how many
    binaries the sandbox can activate."""
    from repro.core.pipeline import MalNet, PipelineConfig

    scale = StudyScale(sample_fraction=0.08, probe_days=2,
                       observe_duration=900.0, scan_budget=60)

    def discovered_c2s(rate: float) -> int:
        world = generate_world(seed=99, scale=scale)
        malnet = MalNet(world, PipelineConfig(activation_rate=rate))
        malnet.run()
        return len(malnet.datasets.d_c2s)

    counts = {rate: discovered_c2s(rate) for rate in (0.9, 0.5, 0.2)}
    benchmark(lambda: None)
    emit(render_table(
        ["activation rate", "distinct C2s found"],
        [[f"{r:.0%}", c] for r, c in counts.items()],
        "Ablation — sandbox activation capability",
    ))
    assert counts[0.9] > counts[0.5] > counts[0.2]
