"""Figure 10: DDoS attack distribution by target protocol."""

from conftest import emit

from repro.core import ddos_analysis
from repro.core.report import render_histogram

PAPER = {"UDP": 0.74, "TCP": 0.14, "DNS": 0.07, "ICMP": 0.05}


def test_fig10_attack_target_protocols(benchmark, datasets):
    shares = benchmark(ddos_analysis.protocol_distribution, datasets)
    emit(render_histogram(
        {k: round(v * 100) for k, v in shares.items()},
        "Figure 10 — attacks by target protocol (%)",
    ))
    # UDP-based attacks dominate by a wide margin
    assert shares.get("UDP", 0) > 0.5
    assert shares["UDP"] > 2.5 * shares.get("TCP", 0)
    # ICMP (BLACKNURSE) and DNS exist but are small
    for minority in ("ICMP", "DNS"):
        if minority in shares:
            assert shares[minority] < 0.2
    # the default web ports attract a disproportionate share (21% / 7%)
    p80 = ddos_analysis.port_share(datasets, 80)
    p443 = ddos_analysis.port_share(datasets, 443)
    emit(f"port 80 share: paper 21% / measured {p80:.0%}; "
         f"port 443: paper 7% / measured {p443:.0%}")
    assert p80 > p443
    assert 0.05 < p80 < 0.45
