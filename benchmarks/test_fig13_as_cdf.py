"""Figure 13: CDF of C2 volume over the autonomous-system ranking."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_cdf


def test_fig13_as_cdf(benchmark, world, datasets):
    points = benchmark(c2_analysis.as_count_cdf, datasets, world.asdb)
    emit(render_cdf(points, "Figure 13 — cumulative C2 share by AS rank",
                    "AS rank"))
    total_ases = len(points)
    emit(f"distinct ASes hosting C2s: paper 128 / measured {total_ases}")
    # many ASes appear overall...
    assert total_ases >= 40
    # ...but the distribution is extremely top-heavy: the first ten ranks
    # carry most of the mass (69.7% in the paper)
    at_ten = max(p.fraction for p in points if p.value <= 10)
    assert 0.5 < at_ten < 0.9
    # and the curve is a proper CDF ending at 1
    assert points[-1].fraction == 1.0
