"""In-text numerical claims not tied to one table or figure."""

from conftest import emit

from repro.core import c2_analysis, ddos_analysis
from repro.core.report import render_comparison


def test_dead_on_arrival_rate(benchmark, datasets):
    """Section 3.2: 60% of samples have a dead C2 on the day reported."""
    rate = benchmark(c2_analysis.dead_on_arrival_rate, datasets)
    emit(f"dead-on-day-0 C2 rate: paper 60% / measured {rate:.0%}")
    assert 0.4 < rate < 0.75


def test_attack_c2s_live_longer(benchmark, datasets):
    """Section 5: attack-launching C2s live ~10 days vs ~4 overall."""
    overall = c2_analysis.mean_lifespan_days(datasets)
    attackers = benchmark(c2_analysis.mean_lifespan_days, datasets, True)
    emit(render_comparison(
        [("mean lifespan (all C2s)", "~4 days", f"{overall:.1f} days"),
         ("mean lifespan (attack C2s)", "~10 days", f"{attackers:.1f} days")],
        "attack-launching C2 longevity",
    ))
    assert attackers > 1.5 * overall


def test_downloaders_colocated_with_c2s(benchmark, datasets):
    """Section 3.1: 47 downloaders, 12 not C2s, all on port 80."""
    analysis = benchmark(c2_analysis.downloader_colocation, datasets)
    emit(render_comparison(
        [("distinct downloaders", "47", str(analysis.distinct_downloaders)),
         ("downloaders not C2s", "12", str(analysis.not_c2_count)),
         ("downloader ports", "{80}", str(analysis.ports))],
        "downloader / C2 co-location",
    ))
    # most downloader addresses double as C2s
    assert analysis.not_c2_count < analysis.distinct_downloaders / 2
    assert analysis.ports == {80}


def test_attack_issuing_countries(benchmark, world, datasets):
    """Section 5: USA + Netherlands + Czechia issue 80% of attacks."""
    share = benchmark(
        ddos_analysis.attack_country_concentration, datasets, world.asdb
    )
    countries = ddos_analysis.issuing_c2_countries(datasets, world.asdb)
    emit(f"attack share from US+NL+CZ: paper 80% / measured {share:.0%} "
         f"(issuing countries: {countries})")
    assert share > 0.5
    assert len(countries) >= 3  # paper: 6 countries


def test_unflagged_attack_c2s_exist(benchmark, datasets):
    """Section 5: two attack C2s were unknown to VT on launch day."""
    unflagged = benchmark(ddos_analysis.unflagged_attack_c2s, datasets)
    emit(f"attack C2s unknown to TI on launch day: paper 2 / "
         f"measured {len(unflagged)} ({unflagged})")
    # the just-in-time intelligence argument requires at least sometimes
    # beating the feeds; zero is possible but the band allows a few
    assert 0 <= len(unflagged) <= 6


def test_samples_receiving_commands(benchmark, datasets):
    """Table 1 note: the 42 commands were issued to 20 distinct samples."""
    def distinct_recipients():
        recipients = set()
        for record in datasets.d_ddos:
            recipients.update(record.sample_hashes)
        return recipients

    recipients = benchmark(distinct_recipients)
    emit(f"samples receiving DDoS commands: paper 20 / measured {len(recipients)}")
    assert 10 <= len(recipients) <= 45
    c2s = {record.c2_endpoint for record in datasets.d_ddos}
    emit(f"distinct attack-issuing C2s: paper 17 / measured {len(c2s)}")
    assert 10 <= len(c2s) <= 17
