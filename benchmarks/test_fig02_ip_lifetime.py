"""Figure 2: CDF of observed lifetime of C2 IPs."""

from conftest import emit

from repro.analysis.stats import mean
from repro.core import c2_analysis
from repro.core.report import render_cdf


def test_fig2_c2_ip_lifetime_cdf(benchmark, datasets):
    points = benchmark(c2_analysis.lifetime_cdf, datasets, False)
    emit(render_cdf(points, "Figure 2 — CDF of C2 IP observed lifetime",
                    "days"))
    spans = [r.observed_lifespan_days for r in datasets.d_c2s.values()
             if not r.is_dns]
    one_day = sum(1 for s in spans if s <= 1) / len(spans)
    emit(f"one-day lifespan share: paper ~80% / measured {one_day:.0%}; "
         f"mean: paper ~4 days / measured {mean(spans):.1f} days")
    # shape: the large majority of C2 IPs are seen within a single day...
    assert one_day > 0.6
    # ...but a long tail to ~40 days pulls the mean well above the median
    assert max(spans) > 20
    assert 2.0 < mean(spans) < 6.0
