"""Table 1: the five dataset sizes."""

from conftest import emit

from repro.core.report import render_comparison

PAPER = {
    "D-Samples": 1447,
    "D-C2s": 1160,
    "D-PC2": 448,
    "D-Exploits": 197,
    "D-DDOS": 42,
}


def test_table1_dataset_sizes(benchmark, datasets):
    summary = benchmark(datasets.summary)
    emit(render_comparison(
        [(name, str(PAPER[name]), str(summary[name])) for name in PAPER],
        "Table 1 — dataset sizes (paper vs measured)",
    ))
    # exact-by-construction: the corpus size matches the paper
    assert summary["D-Samples"] == 1447
    # exploit-yielding samples land on the paper's ~197
    assert 150 <= summary["D-Exploits"] <= 250
    # most of the 42 scheduled attack commands are eavesdropped
    assert 30 <= summary["D-DDOS"] <= 42
    # 7 probed C2s observed over 4h slots for two weeks
    assert summary["D-PC2"] >= 300
    # D-C2s: the paper's 1160 does not reconcile with its own Figure 5
    # (see EXPERIMENTS.md); we match Figure 5's reuse distribution, which
    # yields a few hundred distinct C2s for 1447 binaries.
    assert 150 <= summary["D-C2s"] <= 600
