"""Figure 7: CDF of the number of vendors flagging a known C2."""

from conftest import emit

from repro.core import ti_analysis
from repro.core.report import render_cdf


def test_fig7_vendors_per_c2_cdf(benchmark, world, datasets):
    points = benchmark(ti_analysis.vendor_count_cdf, datasets, world.vt)
    emit(render_cdf(points, "Figure 7 — CDF of #vendors flagging a C2",
                    "#vendors"))
    low = ti_analysis.low_coverage_share(datasets, world.vt, at_most=2)
    emit(f"C2s flagged by <=2 feeds: paper ~25% / measured {low:.0%}")
    # a substantial minority of known C2s is covered by only 1-2 feeds —
    # intelligence sharing is absent or lagging (section 3.3)
    assert 0.05 < low < 0.45
    # while well-known C2s are flagged by 10+ feeds
    assert points[-1].value >= 10
