"""Figure 1: weekly heatmap of C2 activity across the top-10 ASes."""

from conftest import emit

from repro.core import c2_analysis
from repro.core.report import render_heatmap
from repro.world.calibration import ACTIVE_WEEKS


def test_fig1_weekly_as_heatmap(benchmark, world, datasets):
    matrix = benchmark(
        c2_analysis.weekly_as_heatmap, datasets, world.asdb, ACTIVE_WEEKS
    )
    emit(render_heatmap(matrix, "Figure 1 — weekly C2s per top AS "
                                "(columns = study weeks 1..31)"))
    assert len(matrix) == 10
    totals = {asn: sum(row) for asn, row in matrix.items()}
    ranked = sorted(totals.values(), reverse=True)
    # the top four ASes are consistently more active than the bottom four
    assert sum(ranked[:4]) > 2 * sum(ranked[-4:])
    # more C2s appear since January 2022 (weeks 21+) than weeks 1-11
    early = sum(sum(row[0:11]) for row in matrix.values())
    late = sum(sum(row[20:31]) for row in matrix.values())
    assert late > early
    # week 28 is the peak week overall
    weekly = [sum(row[w] for row in matrix.values()) for w in range(ACTIVE_WEEKS)]
    assert max(weekly) == max(weekly[25:30])
    # the AS-44812 late-study surge: its per-week activity in the last
    # four weeks beats its earlier per-week average
    if 44812 in matrix:
        row = matrix[44812]
        late_rate = sum(row[27:]) / 4
        early_rate = sum(row[:27]) / 27
        assert late_rate > early_rate
