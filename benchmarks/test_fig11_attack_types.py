"""Figure 11: DDoS attack type distribution by malware family."""

from conftest import emit

from repro.core import ddos_analysis
from repro.core.report import render_histogram


def test_fig11_attack_types_by_family(benchmark, datasets):
    counts = benchmark(ddos_analysis.type_by_family, datasets)
    emit(render_histogram(
        {f"{family}/{kind}": n for (family, kind), n in counts.items()},
        "Figure 11 — attack type by family",
    ))
    per_family = ddos_analysis.attacks_per_family(datasets)
    emit(f"attacks per family: {per_family}")
    # Mirai launches the most attacks; Daddyl33t is second; Gafgyt fewest
    assert per_family["mirai"] >= per_family["daddyl33t"] >= per_family["gafgyt"]
    # Daddyl33t is the most diverse in attack types
    types_of = lambda fam: {kind for (f, kind) in counts if f == fam}
    assert len(types_of("daddyl33t")) >= len(types_of("gafgyt"))
    assert len(types_of("daddyl33t")) >= 4
    # the 8 types of section 5.1 are (nearly) all observed
    all_types = {kind for (_f, kind) in counts}
    assert len(all_types) >= 7
    # family-specific signatures: BLACKNURSE/NFO are daddyl33t-only;
    # STD and the one VSE instance are Gafgyt's (section 5.1)
    assert ("daddyl33t", "BLACKNURSE") in counts or ("daddyl33t", "NFO") in counts
    assert all(f == "daddyl33t" for (f, k) in counts if k in ("BLACKNURSE", "NFO"))
    assert all(f == "gafgyt" for (f, k) in counts if k in ("STD", "VSE"))
