#!/usr/bin/env python3
"""MalNet as an always-on monitoring service (paper sections 1 and 6a).

Streams the study day by day through :class:`ContinuousMonitor` and
prints the live alert feed a SOC would receive: new C2 discoveries, TI
blind spots ("live C2 unknown to every feed — block it now"), first
exploit sightings, and attacks caught mid-launch, plus the daily
firewall-rule deltas shipped to subscribers.

Run:  python examples/continuous_monitoring.py
"""

from repro.core.monitor import AlertKind, ContinuousMonitor
from repro.world import StudyScale, generate_world
from repro.world.calibration import ACTIVE_WEEKS


def main() -> None:
    scale = StudyScale(sample_fraction=0.08, probe_days=2,
                       observe_duration=1200.0)
    world = generate_world(seed=2132642, scale=scale)
    monitor = ContinuousMonitor(world)

    print(f"monitoring {scale.total_samples} binaries over "
          f"{ACTIVE_WEEKS} study weeks ...\n")
    shown = 0
    for day in range(ACTIVE_WEEKS * 7 + 60):
        digest = monitor.tick(day)
        for alert in digest.alerts:
            if shown < 25 or alert.kind in (AlertKind.ATTACK_IN_PROGRESS,
                                            AlertKind.TI_BLIND_SPOT):
                print(alert.render())
                shown += 1
        if digest.new_rules and shown < 40:
            print(f"[day {day:>3}] shipped {len(digest.new_rules)} "
                  f"new firewall rules")

    print()
    counts = monitor.alert_counts()
    print("alert totals:")
    for kind in AlertKind:
        print(f"  {kind.value:<16} {counts.get(kind, 0)}")
    print()
    summary = monitor.datasets.summary()
    print(f"datasets accumulated: {summary}")
    blind = counts.get(AlertKind.TI_BLIND_SPOT, 0)
    print(f"\n{blind} live C2s were unknown to all TI feeds when found — "
          "the just-in-time value a binary-centric monitor provides.")


if __name__ == "__main__":
    main()
