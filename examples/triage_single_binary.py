#!/usr/bin/env python3
"""Triage one malware binary with the sandbox, like MalNet does daily.

Builds a synthetic Mirai MIPS 32B sample (XOR-obfuscated config and all),
then walks the exact pipeline steps: ELF filtering, AV corroboration,
YARA/AVClass2 labeling, closed-world activation, C2 detection, handshaker
exploit extraction — and finally writes the traffic out as a real pcap
file and reads it back.

Run:  python examples/triage_single_binary.py [out.pcap]
"""

import random
import sys

from repro.binary import BotConfig, build_sample, is_mips32_elf
from repro.botnet.exploits import KEY_TO_INDEX, classify_exploit
from repro.feeds import VirusTotalService, label_sample
from repro.netsim import Capture, FlowTable
from repro.sandbox import CncHunterSandbox, MipsEmulator


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/malnet-triage.pcap"
    rng = random.Random(7)

    config = BotConfig(
        family="mirai",
        c2_host="cnc.okiru.example",
        c2_port=23,
        scan_ports=[23, 2323],
        exploit_ids=[KEY_TO_INDEX["CVE-2018-10561"],
                     KEY_TO_INDEX["CVE-2015-2051"]],
        loader_name="8UsA.sh",
        downloader="203.0.113.80:80",
        variant="mirai.a",
    )
    sample = build_sample(config, rng)
    print(f"built sample {sample.sha256[:16]} ({len(sample)} bytes)")
    print(f"  MIPS 32B ELF:  {is_mips32_elf(sample.data)}")
    print(f"  C2 string obfuscated on disk: "
          f"{b'cnc.okiru.example' not in sample.data}")

    vt = VirusTotalService(random.Random(1))
    vt.submit_sample(sample, when=0.0)
    report = vt.scan(sample, now=0.0)
    print(f"  AV engines detecting: {report.positives}/75 "
          f"(threshold is 5)")
    print(f"  YARA family: {report.yara_families}")
    print(f"  AVClass2 family: {label_sample(report.engine_labels)}")

    sandbox = CncHunterSandbox(
        random.Random(2),
        emulator=MipsEmulator(random.Random(3), activation_rate=1.0),
    )
    offline = sandbox.analyze_offline(sample.data, scan_budget=400)
    print()
    print(f"sandbox activation:  {offline.activated}")
    print(f"detected C2:         {offline.c2_endpoint}:{offline.c2_port} "
          f"(dialect: {offline.c2_candidates[0].dialect})")
    print(f"popular scan ports:  {offline.scan_ports}")
    print(f"exploit payloads captured: {len(offline.exploits)}")
    for capture in offline.exploits[:4]:
        vuln = classify_exploit(capture.payload)
        label = vuln.key if vuln else "telnet credentials"
        print(f"  port {capture.port:<5} -> {label}")

    offline.capture.save(out_path)
    print()
    print(f"wrote {len(offline.capture)} packets to {out_path}")
    restored = Capture.load(out_path)
    table = FlowTable.from_capture(restored)
    print(f"re-read pcap: {len(restored)} packets, {len(table)} flows")
    top = sorted(table.flows(), key=lambda f: -f.total_bytes)[:3]
    for flow in top:
        from repro.netsim import int_to_ip

        print(f"  {int_to_ip(flow.initiator)} -> "
              f"{int_to_ip(flow.responder)}:{flow.responder_port} "
              f"{flow.protocol.name} {flow.total_bytes}B")


if __name__ == "__main__":
    main()
