#!/usr/bin/env python3
"""Audit threat-intelligence feed effectiveness (section 3.3).

Runs a mid-size study, then measures the TI feeds exactly as the paper
does: query VirusTotal's 89 vendor feeds on the day each C2 is
discovered, re-query months later, and count how many feeds ever flag
each known C2.

Run:  python examples/threat_intel_audit.py
"""

from repro import StudyScale, generate_world, run_study
from repro.core import ti_analysis
from repro.core.report import render_cdf, render_table


def main() -> None:
    scale = StudyScale(sample_fraction=0.25, probe_days=4)
    world = generate_world(seed=89, scale=scale)
    print(f"running study over {scale.total_samples} samples ...")
    _malnet, _probing, datasets = run_study(world)

    rates = ti_analysis.table3(datasets)
    print()
    print(render_table(
        ["Type", "Same Day miss", "Re-query miss", "n"],
        [[name, f"{entry.same_day:.1%}", f"{entry.recheck:.1%}",
          entry.count] for name, entry in rates.items()],
        title="Table 3 — C2s unknown to the feeds "
              "(paper: 15.3% / 3.3% for All)",
    ))

    print()
    points = ti_analysis.vendor_count_cdf(datasets, world.vt)
    print(render_cdf(points, "Figure 7 — #vendors flagging a known C2",
                     "#vendors"))
    low = ti_analysis.low_coverage_share(datasets, world.vt)
    print(f"\nC2s covered by <=2 feeds: {low:.0%} (paper: ~25%) — "
          "intelligence sharing is absent or lagging")

    print()
    rows = ti_analysis.table7(datasets, world.vt)[:10]
    print(render_table(
        ["vendor", "detections /1000 C2 IPs"],
        [[name, count] for name, count in rows],
        title="Table 7 (top 10 vendors)",
    ))
    active = ti_analysis.active_vendor_count(datasets, world.vt)
    print(f"\nvendors that ever flag an IoT C2: {active}/89 (paper: 44/89)")
    print("takeaway: an effective blacklist must aggregate many feeds, "
          "and still loses to 1-day C2 lifespans without same-day data.")


if __name__ == "__main__":
    main()
