#!/usr/bin/env python3
"""Eavesdrop on live DDoS attacks through a connected bot (section 2.5).

Builds a Daddyl33t C2 server with a schedule of attacks, activates a bot
binary against it in restricted mode (only C2 traffic may leave the
sandbox), and shows the two detection methods working on the recorded
session: the protocol profilers decoding the command stream, and the
100-packets-per-second behavioral heuristic firing on the contained
attack traffic.

Run:  python examples/ddos_eavesdropping.py
"""

import random

from repro.analysis.ddos_detect import (
    profile_stream,
    rate_bursts,
    target_in_command_bytes,
    verify_flooding,
)
from repro.binary import BotConfig, build_sample
from repro.botnet import AttackCommand, C2Server, get_family
from repro.netsim import Listener, Protocol, VirtualInternet, int_to_ip, ip_to_int
from repro.sandbox import CncHunterSandbox, MipsEmulator, SANDBOX_IP

C2_IP = ip_to_int("203.0.113.66")
C2_PORT = 1312


def main() -> None:
    internet = VirtualInternet(random.Random(0))
    internet.add_host(SANDBOX_IP, "sandbox")
    c2_host = internet.add_host(C2_IP, "daddyl33t-c2")
    server = C2Server(get_family("daddyl33t"), random.Random(1))
    c2_host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP, service=server))

    # the operator queues three attacks: two on one victim (the paper's
    # "one target hit by multiple attacks" pattern), one BLACKNURSE
    victim_a = ip_to_int("192.0.2.77")
    victim_b = ip_to_int("198.51.100.99")
    now = internet.clock.now
    server.schedule_attack(now + 120, AttackCommand("tls", victim_a, 443, 60))
    server.schedule_attack(now + 300, AttackCommand("hydrasyn", victim_a, 4567, 60))
    server.schedule_attack(now + 500, AttackCommand("blacknurse", victim_b, 0, 60))

    config = BotConfig(family="daddyl33t", c2_host=int_to_ip(C2_IP),
                       c2_port=C2_PORT, variant="daddyl33t.a")
    binary = build_sample(config, random.Random(2))

    sandbox = CncHunterSandbox(
        random.Random(3), internet,
        emulator=MipsEmulator(random.Random(4), activation_rate=1.0),
    )
    print("connecting the bot to its C2 in restricted mode (2h window)...")
    report = sandbox.observe_live(binary.data, duration=1200.0,
                                  poll_interval=60.0)
    print(f"connected: {report.connected}; "
          f"commands heard: {len(report.commands)}; "
          f"IDS alerts: {report.alerts}")

    print()
    print("method (a) — protocol profile over the server stream:")
    for item in profile_stream(report.server_stream):
        command = item.command
        flooded = verify_flooding(command, report.contained, SANDBOX_IP)
        print(f"  [{item.family_profile}] {command.method.upper():<10} "
              f"{int_to_ip(command.target_ip)}:{command.target_port} "
              f"{command.duration}s  -> flooding verified: {flooded}")

    print()
    print("method (b) — behavioral heuristic (>100 pps to non-C2 hosts):")
    for burst in rate_bursts(report.contained, SANDBOX_IP, {C2_IP}):
        attributable = target_in_command_bytes(burst.target,
                                               report.server_stream)
        print(f"  burst to {int_to_ip(burst.target)}: {burst.rate:.0f} pps "
              f"-> target found in C2 command bytes: {attributable}")

    print()
    contained = len(report.contained)
    released = sum(1 for p in report.capture if p.dst not in (C2_IP,))
    print(f"containment: {contained} attack packets recorded, "
          f"none delivered to victims (SNORT egress policy)")


if __name__ == "__main__":
    main()
