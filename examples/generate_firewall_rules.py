#!/usr/bin/env python3
"""From malware binaries to firewall rules (the paper's deployment goal).

Runs a small study, then compiles what MalNet learned — live C2 servers,
downloader hosts, exploit payloads, observed DDoS signatures — into
iptables drops, dnsmasq blackholes, and Snort signatures, each annotated
with its provenance.

Run:  python examples/generate_firewall_rules.py
"""

from repro import StudyScale, generate_world, run_study
from repro.core.firewall import compile_rules, coverage_report


def main() -> None:
    scale = StudyScale(sample_fraction=0.12, probe_days=4)
    world = generate_world(seed=1447, scale=scale)
    print(f"running study over {scale.total_samples} samples ...")
    _malnet, _probing, datasets = run_study(world)

    bundle = compile_rules(datasets)
    print()
    for technology in ("iptables", "dnsmasq", "snort"):
        rules = bundle.by_technology(technology)
        print(f"--- {technology} ({len(rules)} rules) " + "-" * 30)
        for rule in rules[:6]:
            print(rule.render())
        if len(rules) > 6:
            print(f"... and {len(rules) - 6} more")
        print()

    report = coverage_report(datasets, bundle)
    print(f"coverage: {report['c2_coverage']:.0%} of verified C2s blocked; "
          f"{report['binary_coverage']:.0%} of C2-bearing binaries "
          f"neutralized")
    print("(the gap between the two is the paper's §3.3 point: blocking a "
          "shared C2 contains every binary that uses it)")


if __name__ == "__main__":
    main()
