#!/usr/bin/env python3
"""Active probing for live C2 servers (the D-PC2 experiment, section 2.3b).

Stands up a small Internet with elusive C2 servers hidden among benign
web hosts, weaponizes two malware samples, and probes six /24 subnets on
the paper's twelve ports every four hours for a week.  Prints a
Figure 4-style probe-response matrix and the elusiveness statistics.

Run:  python examples/active_probing_study.py
"""

import random

from repro.core.probing import ProbingCampaign
from repro.core.report import render_probe_matrix
from repro.core.study import select_probe_binaries
from repro.sandbox import CncHunterSandbox, MipsEmulator, SANDBOX_IP
from repro.world import StudyScale, generate_world


def main() -> None:
    scale = StudyScale(sample_fraction=0.03, probe_days=7)
    world = generate_world(seed=1312, scale=scale)
    world.internet.ensure_host(SANDBOX_IP)

    sandbox = CncHunterSandbox(
        random.Random(4), world.internet,
        emulator=MipsEmulator(random.Random(5), activation_rate=1.0),
    )
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=select_probe_binaries(world),
        start=world.probe_start,
        days=scale.probe_days,
    )
    print(f"probing {len(campaign.subnets)} subnets x "
          f"{len(campaign.ports)} ports, {campaign.slots_per_day} probes/day "
          f"for {campaign.days} days ...")
    campaign.run()

    print()
    print(render_probe_matrix(
        campaign.response_matrix(),
        f"discovered {len(campaign.discovered)} C2 servers:",
    ))
    print()
    rate = campaign.repeat_response_rate()
    print(f"P(responds again 4h after a success): {rate:.0%} "
          f"(paper: ~9% — i.e. 91% of the time it does NOT)")
    print(f"any server ever answered all 6 daily probes: "
          f"{campaign.any_full_day_response()} (paper: never)")
    engaged = sum(1 for obs in campaign.observations if obs.engaged)
    print(f"D-PC2 records: {len(campaign.observations)} probe "
          f"observations, {engaged} engagements")


if __name__ == "__main__":
    main()
