#!/usr/bin/env python3
"""Quickstart: run a small MalNet study end to end.

Generates a scaled-down closed world (IoT malware campaigns, C2 servers,
threat-intel feeds), runs the full MalNet pipeline over it — daily
collection, sandbox activation, C2 detection, exploit extraction, live
DDoS eavesdropping, subnet probing — and prints the headline results.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import StudyScale, generate_world, run_study
from repro.core import c2_analysis, ti_analysis
from repro.core.report import render_comparison


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 20220322
    scale = StudyScale(sample_fraction=0.15, probe_days=7,
                       observe_duration=1800.0)
    print(f"generating world (seed={seed}, "
          f"{scale.total_samples} samples) ...")
    world = generate_world(seed=seed, scale=scale)
    print("running the MalNet study ...")
    malnet, probing, datasets = run_study(world)

    print()
    summary = datasets.summary()
    print(render_comparison(
        [(name, "-", str(size)) for name, size in summary.items()],
        "Dataset sizes (Table 1 shape)",
    ))

    with_c2 = [p for p in datasets.profiles if p.has_c2]
    live = sum(p.c2_live_on_day0 for p in with_c2)
    print()
    print(f"binaries analyzed:        {len(datasets.profiles)}")
    print(f"  activated:              "
          f"{sum(p.activated for p in datasets.profiles)}")
    print(f"  P2P (no central C2):    "
          f"{sum(p.is_p2p for p in datasets.profiles)}")
    print(f"  C2 detected:            {len(with_c2)}")
    print(f"  C2 live on day 0:       {live} "
          f"({live / max(1, len(with_c2)):.0%})")

    rates = ti_analysis.table3(datasets)
    print()
    print("threat-intel misses (same-day -> May 7 re-query):")
    for kind, entry in rates.items():
        print(f"  {kind:<10} {entry.same_day:6.1%} -> {entry.recheck:6.1%} "
              f"(n={entry.count})")

    print()
    print(f"probing: discovered {len(probing.discovered)} C2s; "
          f"repeat-response rate "
          f"{probing.repeat_response_rate():.0%} (paper: ~9%)")
    print(f"attacks eavesdropped: {len(datasets.d_ddos)} "
          f"({sorted({r.attack_type for r in datasets.d_ddos})})")
    print(f"dead-on-arrival C2 rate: "
          f"{c2_analysis.dead_on_arrival_rate(datasets):.0%} (paper: 60%)")

    print()
    print("three example binary profiles:")
    interesting = sorted(datasets.profiles,
                         key=lambda p: -(len(p.attacks) * 10 + len(p.exploits)))
    for profile in interesting[:3]:
        print(" ", profile.summary_line())


if __name__ == "__main__":
    main()
